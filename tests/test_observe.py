"""Tests for the observability layer (repro.observe).

Covers the tracer's enable/disable overhead paths, ring-buffer bounds,
counter/histogram aggregation, the Chrome trace export, the ``trace`` CLI
subcommand, and the non-perturbation guarantee: a traced run must produce
byte-identical final states (and identical simulated cycles) to an
untraced run.
"""

import json

import pytest

from repro import algorithms, observe, runtime
from repro.__main__ import main
from repro.graph import datasets
from repro.hardware import HardwareConfig
from repro.observe import (
    NULL_TRACER,
    Histogram,
    MetricRegistry,
    NullTracer,
    Tracer,
    flame_summary,
    to_chrome_trace,
    tracing,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        null = NullTracer()
        assert null.enabled is False
        # every API is a no-op; nothing raises, nothing is recorded
        null.span("a", 0.0, 10.0)
        null.instant("b", 5.0)
        null.counter("c", 1.0, {"x": 1.0})
        null.name_track(1, "core 0")
        assert list(null.events()) == []

    def test_default_process_tracer_is_null(self):
        assert observe.get_tracer() is NULL_TRACER

    def test_tracing_context_restores_previous(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert observe.get_tracer() is tracer
        assert observe.get_tracer() is NULL_TRACER


class TestTracer:
    def test_records_spans_instants_counters(self):
        tracer = Tracer()
        tracer.span("work", 10.0, 5.0, track=1, args={"vertex": 3})
        tracer.instant("steal", 12.0, track=2)
        tracer.counter("activity", 15.0, {"active": 7.0})
        phases = [event[0] for event in tracer.events()]
        assert phases == ["X", "i", "C"]
        assert len(tracer) == 3

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.span("w", 10.0, -1.0)
        (_, _, _, _, dur, _, _), = tracer.events()
        assert dur == 0.0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", float(i))
        assert len(tracer) == 4
        assert tracer.dropped == 6
        names = [event[1] for event in tracer.events()]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestChromeExport:
    def _tracer(self):
        tracer = Tracer()
        tracer.name_track(0, "scheduler")
        tracer.name_track(1, "core 0")
        tracer.span("round", 0.0, 100.0, track=0, args={"round": 0})
        tracer.span("root", 5.0, 20.0, track=1)
        tracer.instant("steal", 30.0, track=1)
        tracer.counter("activity", 100.0, {"active": 4.0})
        return tracer

    def test_structure_and_json_roundtrip(self):
        trace = to_chrome_trace(self._tracer(), system="depgraph-h")
        parsed = json.loads(json.dumps(trace))
        events = parsed["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X", "i", "C"}
        complete = [e for e in events if e["ph"] == "X"]
        assert all({"name", "ts", "dur", "pid", "tid"} <= e.keys() for e in complete)
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"scheduler", "core 0"}
        assert parsed["otherData"]["system"] == "depgraph-h"
        assert parsed["otherData"]["droppedEvents"] == 0

    def test_flame_summary_aggregates(self):
        summary = flame_summary(self._tracer())
        assert "round" in summary and "root" in summary
        # the widest span dominates the share column
        assert summary.index("round") < summary.index("root")

    def test_flame_summary_empty(self):
        assert "no spans" in flame_summary(Tracer())


class TestMetricRegistry:
    def test_counter_aggregation(self):
        registry = MetricRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.set("gauge", 7.5)
        assert registry.counter_value("hits") == 5.0
        flat = registry.as_dict()
        assert flat == {"hits": 5.0, "gauge": 7.5}

    def test_histogram_observation(self):
        registry = MetricRegistry()
        for value in (1, 2, 3, 100):
            registry.observe("round.active", value)
        hist = registry.histogram("round.active")
        assert hist.count == 4
        assert hist.min == 1 and hist.max == 100
        assert hist.mean == pytest.approx(26.5)
        flat = registry.as_dict(prefix="obs.")
        assert flat["obs.round.active.count"] == 4.0
        assert flat["obs.round.active.max"] == 100.0

    def test_histogram_pow2_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 100):
            hist.record(value)
        buckets = hist.buckets()
        assert buckets[0] == 2  # 0 and 1
        assert buckets[1] == 1  # 2
        assert buckets[2] == 2  # 3 and 4
        assert buckets[7] == 1  # 100 <= 128

    def test_merge_into_extra_and_json(self, tmp_path):
        registry = MetricRegistry()
        registry.inc("cache.l1.hits", 10)
        extra = {}
        registry.merge_into(extra)
        assert extra == {"obs.cache.l1.hits": 10.0}
        path = tmp_path / "metrics.json"
        registry.write_json(path, system="test")
        payload = json.loads(path.read_text())
        assert payload["system"] == "test"
        assert payload["metrics"]["cache.l1.hits"] == 10.0


@pytest.fixture(scope="module")
def small_workload():
    graph = datasets.load("GL", scale=0.05)
    hardware = HardwareConfig.scaled(num_cores=8)
    return graph, hardware


class TestNonPerturbation:
    """Observability must not change what the simulator computes."""

    @pytest.mark.parametrize("system", ["depgraph-h", "ligra-o", "minnow"])
    def test_traced_run_identical_to_untraced(self, small_workload, system):
        graph, hardware = small_workload
        tracer = Tracer()
        traced = runtime.run(
            system, graph, algorithms.make("pagerank"), hardware, tracer=tracer
        )
        untraced = runtime.run(
            system, graph, algorithms.make("pagerank"), hardware
        )
        assert traced.states.tobytes() == untraced.states.tobytes()
        assert traced.cycles == untraced.cycles
        assert traced.total_updates == untraced.total_updates
        assert len(tracer) > 0

    @pytest.mark.parametrize("system", ["depgraph-h", "ligra-o", "minnow"])
    def test_traced_partition_run_identical_to_untraced(
        self, small_workload, system
    ):
        """The non-perturbation guarantee must hold under the
        partition-aware scheduler too: tracing a run that steals, charges
        hop penalties, and rebalances ownership cannot change it."""
        graph, hardware = small_workload
        tracer = Tracer()
        traced = runtime.run(
            system,
            graph,
            algorithms.make("sssp"),
            hardware,
            tracer=tracer,
            steal_policy="partition",
        )
        untraced = runtime.run(
            system,
            graph,
            algorithms.make("sssp"),
            hardware,
            steal_policy="partition",
        )
        assert traced.states.tobytes() == untraced.states.tobytes()
        assert traced.cycles == untraced.cycles
        assert traced.total_updates == untraced.total_updates
        assert len(tracer) > 0

    @pytest.mark.parametrize("system", ["depgraph-h", "ligra-o", "minnow"])
    @pytest.mark.parametrize("policy", ["random", "partition"])
    def test_sched_counters_deterministic(self, small_workload, system, policy):
        """Two runs of the same workload must report identical
        ``obs.sched.*`` counters — the scheduler has no hidden RNG."""
        graph, hardware = small_workload

        def sched_extras():
            result = runtime.run(
                system,
                graph,
                algorithms.make("sssp"),
                hardware,
                steal_policy=policy,
            )
            return {
                k: v for k, v in result.extra.items() if k.startswith("obs.sched.")
            }

        first = sched_extras()
        second = sched_extras()
        assert first == second
        # the counter family is always flushed, whichever policy ran
        assert first["obs.sched.steals_attempted"] >= 0
        assert first["obs.sched.partition_aware"] == (
            1.0 if policy == "partition" else 0.0
        )

    def test_untraced_run_still_reports_metrics(self, small_workload):
        graph, hardware = small_workload
        result = runtime.run(
            "depgraph-h", graph, algorithms.make("pagerank"), hardware
        )
        # cheap counters are flushed even without a tracer attached
        assert "obs.cache.l1.hits" in result.extra
        assert "obs.hub_index.lookups" in result.extra
        assert "obs.round.active_vertices.count" in result.extra
        # the traced-only extras (per-access sampling) stay absent
        assert "obs.noc.transactions" not in result.extra

    def test_traced_run_adds_sampled_metrics(self, small_workload):
        graph, hardware = small_workload
        result = runtime.run(
            "depgraph-h",
            graph,
            algorithms.make("pagerank"),
            hardware,
            tracer=Tracer(),
        )
        assert "obs.noc.transactions" in result.extra
        assert "obs.engine.fetch_latency.count" in result.extra


class TestTraceCLI:
    def test_trace_subcommand_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "pagerank",
                "GL",
                "--scale",
                "0.05",
                "--cores",
                "4",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        # the default steal policy is "auto"; non-random policies are
        # recorded in the artifact stem
        trace_path = tmp_path / "depgraph-h_pagerank_GL_auto.trace.json"
        metrics_path = tmp_path / "depgraph-h_pagerank_GL_auto.metrics.json"
        assert trace_path.exists() and metrics_path.exists()
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"], "trace must contain events"
        assert {"X", "M"} <= {e["ph"] for e in trace["traceEvents"]}
        metrics = json.loads(metrics_path.read_text())
        assert metrics["metrics"]["cache.l1.hits"] > 0
        assert metrics["converged"] is True
        out = capsys.readouterr().out
        assert "where the cycles went" in out
        assert "round" in out

    def test_trace_subcommand_file_sink(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "sssp",
                "AZ",
                "--scale",
                "0.05",
                "--cores",
                "4",
                "--sink",
                "file",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        events_path = tmp_path / "depgraph-h_sssp_AZ_auto.events.jsonl"
        trace_path = tmp_path / "depgraph-h_sssp_AZ_auto.trace.json"
        assert events_path.exists() and trace_path.exists()
        lines = events_path.read_text().strip().splitlines()
        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] in ("X", "i", "C")]
        # the export was built from the sinked events, one line each
        assert len(lines) == len(spans)
        out = capsys.readouterr().out
        assert "none dropped" in out


class TestFileSink:
    def sample_events(self, tracer):
        tracer.span("work", 10.0, 5.0, track=1, args={"vertex": 3})
        tracer.instant("steal", 12.0, track=2)
        tracer.counter("activity", 15.0, {"active": 7.0})

    def test_streams_and_replays_events(self, tmp_path):
        from repro.observe import FileSink

        with FileSink(tmp_path / "ev.jsonl") as sink:
            tracer = Tracer(sink=sink)
            self.sample_events(tracer)
            events = list(tracer.events())
        assert [e[0] for e in events] == ["X", "i", "C"]
        assert events[0][1] == "work" and events[0][6] == {"vertex": 3}
        assert len(tracer) == 3 and sink.count == 3

    def test_never_drops_past_ring_capacity(self, tmp_path):
        from repro.observe import FileSink

        sink = FileSink(tmp_path / "ev.jsonl")
        tracer = Tracer(capacity=4, sink=sink)
        for i in range(10):
            tracer.instant(f"e{i}", float(i))
        # the ring would have kept only the last 4; the sink keeps all 10
        # including the start of the run, and reports nothing dropped
        assert tracer.dropped == 0
        names = [event[1] for event in tracer.events()]
        assert names == [f"e{i}" for i in range(10)]
        sink.close()

    def test_export_works_from_sink(self, tmp_path):
        from repro.observe import FileSink

        with FileSink(tmp_path / "ev.jsonl") as sink:
            tracer = Tracer(sink=sink)
            tracer.name_track(1, "core 0")
            self.sample_events(tracer)
            trace = to_chrome_trace(tracer)
            assert {"X", "i", "C"} <= {e["ph"] for e in trace["traceEvents"]}
            assert "dropped" not in trace.get("metadata", {}) or not trace[
                "metadata"
            ].get("dropped")
