"""Tests for the streaming-ingest driver (repro.serve.stream) and gate.

Covers the seeded edge-event generator (validity by construction,
bit-determinism), window-boundary property tests (an event with a
timestamp exactly on a window edge lands in exactly one snapshot;
windowed net-effect deltas reconstruct the same CSR as sequential
per-event application and as a one-shot batch rebuild), same-seed
bit-determinism of ``obs.stream.*`` counters and snapshot version
chains, warm-vs-cold standing-query state match, compaction cadence,
the ``stream`` CLI, and the ``check_slo.py --section stream`` gate
including its one-line missing-file/missing-section errors and the
``GITHUB_STEP_SUMMARY`` tables.
"""

import importlib.util
import json
import random
from pathlib import Path

import pytest

from repro.__main__ import EXPERIMENT_MODULES, main
from repro.experiments.stream_ingest import level_label, match_states
from repro.graph import datasets
from repro.graph.stream import (
    EVENT_KINDS,
    EdgeEvent,
    LiveEdgeSet,
    generate_edge_events,
)
from repro.serve import (
    GraphDelta,
    GraphStore,
    StreamConfig,
    StreamRun,
    chain_digest,
    fold_events,
    iter_windows,
    run_stream,
)
from repro.serve.stream import STREAM_COUNTER_FAMILY
from repro.serve.traffic import QuerySpec

REPO_ROOT = Path(__file__).resolve().parents[1]


def stream_graph(weighted=True):
    return datasets.load("AZ", scale=0.05, weighted=weighted)


def fast_config(**overrides):
    """A stream config small enough for unit tests: cheap min-type
    standing queries, a short stream, eager compaction."""
    defaults = dict(
        scale=0.05,
        events=12,
        window=4.0,
        queries=(QuerySpec("sssp", (("source", 0),)), QuerySpec("wcc")),
        compact_every=2,
        keep_last=2,
    )
    defaults.update(overrides)
    return StreamConfig(**defaults)


# ----------------------------------------------------------------------
# Event generator.
# ----------------------------------------------------------------------
class TestEventGenerator:
    def test_same_seed_bit_identical(self):
        graph = stream_graph()
        a = generate_edge_events(graph, 40, seed=3)
        b = generate_edge_events(graph, 40, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        graph = stream_graph()
        assert generate_edge_events(graph, 40, seed=0) != generate_edge_events(
            graph, 40, seed=1
        )

    def test_events_valid_by_construction(self):
        graph = stream_graph()
        events = generate_edge_events(graph, 60, seed=5)
        assert len(events) == 60
        live = LiveEdgeSet(graph)
        last = 0.0
        for event in events:
            assert event.kind in EVENT_KINDS
            assert event.timestamp > last
            last = event.timestamp
            assert event.source != event.target
            live.apply(event)  # raises on any invalid add/remove/reweight

    def test_unweighted_graph_never_reweights(self):
        graph = stream_graph(weighted=False)
        events = generate_edge_events(
            graph, 60, seed=2, mix=(0.2, 0.2, 0.6)
        )
        assert all(event.kind != "reweight" for event in events)

    def test_rejects_bad_arguments(self):
        graph = stream_graph()
        with pytest.raises(ValueError):
            generate_edge_events(graph, -1)
        with pytest.raises(ValueError):
            generate_edge_events(graph, 4, mean_gap_cycles=0.0)
        with pytest.raises(ValueError):
            generate_edge_events(graph, 4, mix=(0.0, 0.0, 0.0))


# ----------------------------------------------------------------------
# Window semantics.
# ----------------------------------------------------------------------
def synthetic_events(timestamps):
    """Adds of distinct edges at the given instants (semantics-neutral)."""
    return tuple(
        EdgeEvent(t, "add", 0, i + 1, 1.0) for i, t in enumerate(timestamps)
    )


class TestWindowing:
    def test_count_windows_chunk_and_flush_partial(self):
        events = synthetic_events([10, 20, 30, 40, 50])
        windows = list(iter_windows(events, "count", 2))
        assert [len(chunk) for _, chunk in windows] == [2, 2, 1]
        # count windows publish at their last event's timestamp
        assert [at for at, _ in windows] == [20, 40, 50]

    def test_interval_boundary_event_in_exactly_one_window(self):
        # 100 sits exactly on the first window edge: half-open [0, 100)
        # puts it in the *second* window, and only there
        events = synthetic_events([40, 100, 150, 300])
        windows = list(iter_windows(events, "interval", 100.0))
        assert [at for at, _ in windows] == [100.0, 200.0, 400.0]
        flattened = [event for _, chunk in windows for event in chunk]
        assert flattened == list(events)  # every event exactly once
        assert events[1] in dict(windows)[200.0]
        assert events[1] not in dict(windows)[100.0]

    def test_interval_skips_empty_windows(self):
        events = synthetic_events([50, 950])
        windows = list(iter_windows(events, "interval", 100.0))
        assert [at for at, _ in windows] == [100.0, 1000.0]

    def test_every_event_lands_in_exactly_one_window(self):
        rng = random.Random("windows")
        for cadence, window in (
            ("count", 3),
            ("count", 7),
            ("interval", 50.0),
            ("interval", 173.0),
        ):
            stamps, t = [], 0.0
            for _ in range(40):
                # mix exact multiples of the window edge with random gaps
                t += rng.choice([window, window / 2, rng.uniform(1, 90)])
                stamps.append(t)
            events = synthetic_events(stamps)
            windows = list(iter_windows(events, cadence, float(window)))
            flattened = [event for _, chunk in windows for event in chunk]
            assert flattened == list(events), (cadence, window)
            publishes = [at for at, _ in windows]
            assert publishes == sorted(publishes)
            # every window closes at or after its last member
            for at, chunk in windows:
                assert all(event.timestamp <= at for event in chunk)

    def test_rejects_bad_cadence_and_window(self):
        events = synthetic_events([1.0])
        with pytest.raises(ValueError):
            list(iter_windows(events, "hourly", 4.0))
        with pytest.raises(ValueError):
            list(iter_windows(events, "count", 0))
        with pytest.raises(ValueError):
            list(iter_windows(events, "interval", -1.0))


# ----------------------------------------------------------------------
# Net-effect folding: windowed == sequential == one-shot.
# ----------------------------------------------------------------------
def sequential_replay(graph, events):
    """Each event as its own delta — the reference semantics."""
    store = GraphStore(graph)
    weighted = graph.is_weighted
    for event in events:
        if event.kind == "add":
            delta = GraphDelta(
                add_edges=(event.edge,),
                add_weights=(event.weight,) if weighted else None,
            )
        elif event.kind == "remove":
            delta = GraphDelta(remove_edges=(event.edge,))
        else:
            delta = GraphDelta(
                reweight=((event.source, event.target, event.weight),)
            )
        store.apply(delta)
    return store.get(store.latest_version).graph


def windowed_replay(graph, events, cadence, window):
    store = GraphStore(graph)
    live = LiveEdgeSet(graph)
    for _, chunk in iter_windows(events, cadence, window):
        store.apply(fold_events(chunk, live, graph.is_weighted))
    return store.get(store.latest_version).graph


class TestFoldEvents:
    @pytest.mark.parametrize("weighted", [True, False])
    def test_windowed_replay_matches_sequential_and_one_shot(self, weighted):
        graph = stream_graph(weighted=weighted)
        # churn-heavy mix maximises same-edge add/remove/reweight overlap
        events = generate_edge_events(
            graph, 80, seed=7, mix=(0.4, 0.3, 0.3)
        )
        reference = sequential_replay(graph, events)
        for cadence, window in (
            ("count", 5.0),
            ("count", 80.0),  # one-shot batch rebuild: a single window
            ("interval", 120_000.0),
        ):
            rebuilt = windowed_replay(graph, events, cadence, window)
            assert rebuilt == reference, (cadence, window)

    def test_remove_then_add_within_one_window(self):
        graph = stream_graph()
        live = LiveEdgeSet(graph)
        edge = live.sample(random.Random(0))
        events = (
            EdgeEvent(1.0, "remove", edge[0], edge[1]),
            EdgeEvent(2.0, "add", edge[0], edge[1], 7.5),
        )
        delta = fold_events(events, LiveEdgeSet(graph), True)
        # nets to a reweight of the surviving edge — never the same edge
        # in both add_edges and remove_edges
        assert delta.add_edges == ()
        assert delta.remove_edges == ()
        assert delta.reweight == ((edge[0], edge[1], 7.5),)

    def test_add_then_remove_nets_to_nothing(self):
        graph = stream_graph()
        events = (
            EdgeEvent(1.0, "add", 0, 1, 2.0),
            EdgeEvent(2.0, "remove", 0, 1),
        )
        live = LiveEdgeSet(graph)
        if (0, 1) in live:
            live.remove((0, 1))
        delta = fold_events(events, live, True)
        assert delta.is_empty


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------
class TestStreamRun:
    def test_same_seed_counters_and_chain_bit_identical(self):
        config = fast_config()
        a = run_stream(config)
        b = run_stream(config)
        assert a.counters == b.counters
        assert a.chain_sha == b.chain_sha
        assert a.staleness == b.staleness

    def test_counter_family_zero_seeded_and_accounted(self):
        config = fast_config()
        stats = run_stream(config)
        for name in STREAM_COUNTER_FAMILY:
            assert f"obs.{name}" in stats.counters, name
        counters = stats.counters
        assert counters["obs.stream.events_ingested"] == config.events
        assert counters["obs.stream.snapshots_published"] == stats.snapshots
        assert counters["obs.stream.standing_refreshes"] == stats.snapshots * len(
            config.queries
        )
        kinds = sum(
            counters[f"obs.stream.events_{kind}"] for kind in EVENT_KINDS
        )
        assert kinds == config.events
        assert counters["obs.stream.staleness_cycles.count"] == len(
            stats.staleness
        )

    def test_staleness_positive_and_quantiles_ordered(self):
        stats = run_stream(fast_config())
        assert stats.staleness
        assert all(sample > 0 for sample in stats.staleness)
        assert stats.staleness_quantile(0.50) <= stats.staleness_quantile(0.95)

    def test_compaction_prunes_but_standing_queries_stay_warm(self):
        config = fast_config(events=16, compact_every=1, keep_last=1)
        run = StreamRun(config)
        stats = run.run()
        assert stats.compactions > 0
        assert run.service.store.first_version > 0
        # lineage baselines sit one publication back, inside keep_last=1,
        # so the warm path survives compaction (refreshes only fall back
        # cold for soundness — e.g. removals under min-type accumulators)
        later = [r for r in stats.refreshes if r.version > 1]
        assert later and any(r.warm for r in later)

    def test_warm_matches_cold_control_states(self):
        config = fast_config()
        warm = run_stream(config, warm=True)
        cold = run_stream(config, warm=False)
        ok, compared = match_states(warm, cold)
        assert ok
        assert compared == len(warm.refreshes)
        assert warm.engine_updates < cold.engine_updates
        assert warm.warm_share > 0.0
        assert cold.warm_share == 0.0

    def test_chain_digest_is_order_sensitive(self):
        delta = GraphDelta(add_edges=((0, 1),), add_weights=(1.0,))
        other = GraphDelta(remove_edges=((0, 1),))
        assert chain_digest([(1, delta)]) != chain_digest([(1, other)])
        assert chain_digest([(1, delta), (2, other)]) != chain_digest(
            [(2, other), (1, delta)]
        )

    def test_cluster_mode_runs_and_is_deterministic(self):
        config = fast_config(workers=2, transport="inline", events=8)
        a = run_stream(config)
        b = run_stream(config)
        assert a.snapshots > 0
        assert a.refreshes and all(r.summary is not None for r in a.refreshes)
        assert a.counters == b.counters
        assert a.chain_sha == b.chain_sha

    def test_interval_cadence_end_to_end(self):
        stats = run_stream(fast_config(cadence="interval", window=150_000.0))
        assert stats.snapshots > 0
        assert stats.events == 12


# ----------------------------------------------------------------------
# CLI + experiment registry.
# ----------------------------------------------------------------------
class TestStreamCLI:
    def test_stream_command_prints_summary(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--scale", "0.05",
                    "--events", "8",
                    "--window", "4",
                    "--queries", "sssp,wcc",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "snapshots" in out
        assert "staleness" in out
        assert "chain" in out

    def test_experiment_registry_has_stream(self):
        assert EXPERIMENT_MODULES["stream"] == "stream_ingest"


# ----------------------------------------------------------------------
# The check_slo --section stream gate.
# ----------------------------------------------------------------------
def load_check_slo():
    spec = importlib.util.spec_from_file_location(
        "check_slo", REPO_ROOT / "benchmarks" / "check_slo.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def synthetic_stream_metrics(
    tmp_path, rate=25.0, staleness=700_000.0, chain="abc123", **flags
):
    label = level_label("count", 8.0)
    payload = {
        "config": {
            "dataset": "AZ",
            "scale": 0.05,
            "seed": 0,
            "system": "depgraph-h",
            "cores": 4,
            "backend": "scalar",
            "reorder": "identity",
            "cadence": "count",
            "events": 12,
            "mean_gap_cycles": 25_000.0,
            "event_mix": [0.7, 0.15, 0.15],
            "queries": ["sssp(source=0)", "wcc()"],
            "compact_every": 2,
            "keep_last": 2,
            "queue_limit": 64,
            "cache_capacity": 32,
            "workers": 0,
            "cadence_levels": [["count", 8.0]],
        },
        "levels": {
            label: {
                "updates_per_mcycle": rate,
                "staleness_p95_cycles": staleness,
            }
        },
        "gate_level": label,
        "states_match": flags.get("states_match", True),
        "deterministic_replay": flags.get("deterministic_replay", True),
        "chain_sha": chain,
    }
    path = tmp_path / "stream_ingest.metrics.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestCheckSloStream:
    def test_update_then_check_round_trip(self, tmp_path, capsys):
        check_slo = load_check_slo()
        metrics = synthetic_stream_metrics(tmp_path)
        baselines = tmp_path / "baselines.json"
        argv = [
            "--section", "stream",
            "--metrics", str(metrics),
            "--baselines", str(baselines),
        ]
        assert check_slo.main(["--update"] + argv) == 0
        assert check_slo.main(argv) == 0
        payload = json.loads(baselines.read_text(encoding="utf-8"))
        assert "count@8" in payload["stream"]["levels"]
        assert payload["stream"]["chain_sha"] == "abc123"

    def test_update_preserves_foreign_sections(self, tmp_path):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        baselines.write_text(json.dumps({"runs": {"keep": 1}}))
        metrics = synthetic_stream_metrics(tmp_path)
        check_slo.main(
            ["--section", "stream", "--update",
             "--metrics", str(metrics), "--baselines", str(baselines)]
        )
        payload = json.loads(baselines.read_text(encoding="utf-8"))
        assert payload["runs"] == {"keep": 1}
        assert "stream" in payload

    def test_detects_regressions(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_stream_metrics(tmp_path)
        base_argv = ["--section", "stream", "--baselines", str(baselines)]
        assert check_slo.main(
            base_argv + ["--update", "--metrics", str(good)]
        ) == 0
        capsys.readouterr()

        slow = synthetic_stream_metrics(tmp_path, rate=10.0)
        assert check_slo.main(base_argv + ["--metrics", str(slow)]) == 1
        assert "sustained ingest" in capsys.readouterr().out

        stale = synthetic_stream_metrics(tmp_path, staleness=2_000_000.0)
        assert check_slo.main(base_argv + ["--metrics", str(stale)]) == 1
        assert "p95 staleness" in capsys.readouterr().out

        drifted = synthetic_stream_metrics(tmp_path, chain="ffff00")
        assert check_slo.main(base_argv + ["--metrics", str(drifted)]) == 1
        assert "chain digest" in capsys.readouterr().out

        mismatch = synthetic_stream_metrics(tmp_path, states_match=False)
        assert check_slo.main(base_argv + ["--metrics", str(mismatch)]) == 1
        assert "cold control" in capsys.readouterr().out

        replay = synthetic_stream_metrics(
            tmp_path, deterministic_replay=False
        )
        assert check_slo.main(base_argv + ["--metrics", str(replay)]) == 1
        assert "replay diverged" in capsys.readouterr().out

    def test_missing_metrics_file_is_one_line(self, tmp_path, capsys):
        check_slo = load_check_slo()
        rc = check_slo.main(
            ["--section", "stream",
             "--metrics", str(tmp_path / "nope.json"),
             "--baselines", str(tmp_path / "baselines.json")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert out.startswith("FAIL:")
        assert "not found" in out

    def test_missing_section_key_in_metrics_is_one_line(
        self, tmp_path, capsys
    ):
        check_slo = load_check_slo()
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"workers": {}}), encoding="utf-8")
        rc = check_slo.main(
            ["--section", "stream", "--metrics", str(wrong),
             "--baselines", str(tmp_path / "baselines.json")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "no 'levels' key" in out
        assert "Traceback" not in out

    def test_missing_baseline_section_is_one_line(self, tmp_path, capsys):
        check_slo = load_check_slo()
        metrics = synthetic_stream_metrics(tmp_path)
        baselines = tmp_path / "baselines.json"
        baselines.write_text(json.dumps({"runs": {}}), encoding="utf-8")
        rc = check_slo.main(
            ["--section", "stream", "--metrics", str(metrics),
             "--baselines", str(baselines)]
        )
        assert rc == 1
        assert "no 'stream' section" in capsys.readouterr().out

    def test_missing_section_errors_for_other_sections(
        self, tmp_path, capsys
    ):
        # the bugfix covers every section, not just stream
        check_slo = load_check_slo()
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"levels": {}}), encoding="utf-8")
        rc = check_slo.main(
            ["--section", "cluster", "--metrics", str(wrong),
             "--baselines", str(tmp_path / "baselines.json")]
        )
        assert rc == 1
        assert "no 'workers' key" in capsys.readouterr().out


class TestStepSummary:
    def test_gate_writes_step_summary_tables(
        self, tmp_path, capsys, monkeypatch
    ):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        check_slo = load_check_slo()
        metrics = synthetic_stream_metrics(tmp_path)
        baselines = tmp_path / "baselines.json"
        argv = ["--section", "stream", "--baselines", str(baselines)]
        check_slo.main(argv + ["--update", "--metrics", str(metrics)])
        assert check_slo.main(argv + ["--metrics", str(metrics)]) == 0
        bad = synthetic_stream_metrics(tmp_path, rate=1.0)
        assert check_slo.main(argv + ["--metrics", str(bad)]) == 1
        text = summary.read_text(encoding="utf-8")
        assert "### SLO gate (stream)" in text
        assert ":white_check_mark: PASS" in text
        assert ":x: FAIL" in text
        assert "| status | detail |" in text

    def test_no_op_without_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        spec = importlib.util.spec_from_file_location(
            "gate_summary", REPO_ROOT / "benchmarks" / "gate_summary.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.write_step_summary("gate", []) is False
        target = tmp_path / "explicit.md"
        assert module.write_step_summary(
            "gate", ["pipe | in | detail"], path=str(target)
        )
        text = target.read_text(encoding="utf-8")
        assert "\\|" in text
