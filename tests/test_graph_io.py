"""The memory-frugal substrate: dtype contract, manifest-dir CSR I/O,
mmap-backed loading, GraphStore formats, and execution bit-identity.

The contract under test (see the dtype-contract section of
``repro.graph.csr`` and docs/PERFORMANCE.md): narrowing index storage
or leaving the arrays disk-resident must never change *what* a run
computes — states bit-identical, simulated cycles equal — only what it
costs the host.
"""

import json

import numpy as np
import pytest

from repro.algorithms import make as make_algorithm
from repro.graph import generators, mutation
from repro.graph.csr import CSRGraph, narrow_index_dtype
from repro.graph.io import (
    CSR_MANIFEST,
    is_csr_dir,
    load_csr,
    load_csr_dir,
    save_csr,
    save_csr_dir,
)
from repro.hardware.config import HardwareConfig
from repro.runtime import run as run_system
from repro.serve.store import GraphDelta, GraphStore

INDEX_NAMES = ("int32", "uint32", "int64")
WEIGHT_NAMES = (None, "float32", "float64")


def small_graph(weighted=True):
    return generators.power_law(60, 220, seed=11, weighted=weighted)


class TestDtypeContract:
    def test_narrow_index_dtype_thresholds(self):
        assert narrow_index_dtype(10, 100) == np.dtype(np.int32)
        assert narrow_index_dtype(0, np.iinfo(np.int32).max) == np.dtype(
            np.int32
        )
        assert narrow_index_dtype(0, np.iinfo(np.int32).max + 1) == np.dtype(
            np.uint32
        )
        assert narrow_index_dtype(0, np.iinfo(np.uint32).max + 1) == np.dtype(
            np.int64
        )

    def test_auto_narrows_small_graph(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)], index_dtype="auto")
        assert g.index_dtype == np.dtype(np.int32)
        assert g.offsets.dtype == g.targets.dtype == np.dtype(np.int32)

    def test_none_preserves_admitted_input_dtype(self):
        offsets = np.array([0, 1, 2], dtype=np.int32)
        targets = np.array([1, 0], dtype=np.int32)
        assert CSRGraph(offsets, targets).index_dtype == np.dtype(np.int32)

    def test_legacy_inputs_default_to_int64(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.index_dtype == np.dtype(np.int64)

    def test_inadmissible_dtypes_rejected(self):
        with pytest.raises(ValueError, match="not admitted"):
            CSRGraph.from_edges(3, [(0, 1)], index_dtype=np.int16)
        with pytest.raises(ValueError, match="not admitted"):
            CSRGraph.from_edges(
                3, [(0, 1)], weights=[1.0], weight_dtype=np.float16
            )

    def test_astype_roundtrip_is_equal(self):
        g = small_graph()
        narrow = g.astype(index_dtype=np.int32)
        assert narrow.index_dtype == np.dtype(np.int32)
        assert narrow == g
        assert narrow.astype(index_dtype=np.int64) == g

    def test_narrowed_halves_index_bytes(self):
        g = small_graph(weighted=False)
        narrow = g.narrowed()
        assert narrow.index_dtype == np.dtype(np.int32)
        assert narrow.nbytes * 2 == g.nbytes

    def test_float32_weights_are_an_explicit_opt_in(self):
        g = small_graph()
        assert g.weight_dtype == np.dtype(np.float64)
        opted = g.astype(weight_dtype=np.float32)
        assert opted.weight_dtype == np.dtype(np.float32)
        assert np.allclose(opted.weights, g.weights, rtol=1e-6)

    def test_from_edges_accepts_array_likes(self):
        pairs = np.array([[0, 1], [2, 0], [1, 2]], dtype=np.int64)
        from_array = CSRGraph.from_edges(3, pairs)
        from_tuples = CSRGraph.from_edges(3, [(0, 1), (2, 0), (1, 2)])
        assert from_array == from_tuples
        weighted = CSRGraph.from_edges(
            3, pairs, weights=np.array([1.0, 2.0, 3.0])
        )
        assert weighted.is_weighted

    def test_from_edges_empty_and_malformed(self):
        assert CSRGraph.from_edges(4, np.zeros((0, 2))).num_edges == 0
        with pytest.raises(ValueError, match="pairs"):
            CSRGraph.from_edges(4, np.zeros((3, 3), dtype=np.int64))

    def test_mutation_preserves_narrow_dtype(self):
        g = small_graph().narrowed()
        grown = mutation.add_edges(g, [(0, 59), (59, 0)])
        assert grown.index_dtype == np.dtype(np.int32)
        wide = mutation.add_edges(small_graph(), [(0, 59), (59, 0)])
        assert grown == wide

    def test_permute_and_reverse_preserve_dtype(self):
        g = small_graph().narrowed()
        perm = np.roll(np.arange(g.num_vertices), 7)
        assert g.permute(perm).index_dtype == np.dtype(np.int32)
        assert g.reverse().index_dtype == np.dtype(np.int32)


class TestCSRDirRoundTrip:
    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    @pytest.mark.parametrize("weight_name", WEIGHT_NAMES)
    @pytest.mark.parametrize("mmap", (False, True))
    def test_roundtrip_matrix(self, tmp_path, index_name, weight_name, mmap):
        g = small_graph(weighted=weight_name is not None)
        g = g.astype(index_dtype=index_name, weight_dtype=weight_name)
        path = tmp_path / "csr"
        save_csr_dir(g, path)
        assert is_csr_dir(path)
        loaded = load_csr_dir(path, mmap=mmap)
        assert loaded == g
        assert loaded.index_dtype == np.dtype(index_name)
        if weight_name is None:
            assert loaded.weights is None
        else:
            assert loaded.weight_dtype == np.dtype(weight_name)

    def test_mmap_arrays_stay_disk_backed(self, tmp_path):
        g = small_graph().narrowed()
        save_csr_dir(g, tmp_path / "csr")
        loaded = load_csr_dir(tmp_path / "csr", mmap=True)
        for array in (loaded.offsets, loaded.targets, loaded.weights):
            assert isinstance(array, np.memmap) or isinstance(
                array.base, np.memmap
            )

    def test_unknown_format_rejected(self, tmp_path):
        g = small_graph()
        save_csr_dir(g, tmp_path / "csr")
        manifest_path = tmp_path / "csr" / CSR_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported CSR dir format"):
            load_csr_dir(tmp_path / "csr")

    def test_manifest_mismatch_rejected(self, tmp_path):
        g = small_graph()
        save_csr_dir(g, tmp_path / "csr")
        manifest_path = tmp_path / "csr" / CSR_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["num_edges"] = g.num_edges + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="does not match its manifest"):
            load_csr_dir(tmp_path / "csr")

    def test_legacy_npz_still_roundtrips(self, tmp_path):
        g = small_graph()
        save_csr(g, tmp_path / "g.npz")
        assert load_csr(tmp_path / "g.npz") == g


class TestGraphStoreFormats:
    @pytest.mark.parametrize("mmap", (False, True))
    def test_format2_roundtrip(self, tmp_path, mmap):
        store = GraphStore(small_graph().narrowed())
        store.apply(GraphDelta(add_edges=((0, 59), (59, 3))))
        store.apply(GraphDelta(remove_edges=((0, 59),)))
        store.save(tmp_path / "store")
        loaded = GraphStore.load(tmp_path / "store", mmap=mmap)
        assert len(loaded) == len(store)
        for version in range(store.latest_version + 1):
            assert loaded.get(version).graph == store.get(version).graph

    def test_format2_base_is_a_manifest_dir(self, tmp_path):
        store = GraphStore(small_graph())
        store.save(tmp_path / "store")
        assert is_csr_dir(tmp_path / "store" / "base")
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["format"] == 2

    def test_mutation_on_mmap_loaded_store(self, tmp_path):
        store = GraphStore(small_graph().narrowed())
        store.save(tmp_path / "store")
        loaded = GraphStore.load(tmp_path / "store", mmap=True)
        version = loaded.apply(GraphDelta(add_edges=((1, 2), (2, 1))))
        assert version.graph.num_edges >= loaded.get(0).graph.num_edges
        assert loaded.compact(keep_last=0) == 1

    def test_legacy_format1_store_loads(self, tmp_path):
        g = small_graph()
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        save_csr(g, store_dir / "base.npz")
        (store_dir / "manifest.json").write_text(
            json.dumps(
                {
                    "format": 1,
                    "base_version": 0,
                    "num_versions": 1,
                    "deltas": [],
                }
            ),
            encoding="utf-8",
        )
        loaded = GraphStore.load(store_dir)
        assert loaded.latest.graph == g

    def test_unknown_store_format_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "manifest.json").write_text(
            json.dumps({"format": 42}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="unsupported graph store"):
            GraphStore.load(store_dir)


class TestExecutionBitIdentity:
    """Narrow + mmap'd runs must be indistinguishable from the seed's
    int64 in-RAM runs: bit-identical states, equal simulated cycles."""

    @pytest.mark.parametrize("backend", ("scalar", "vector"))
    @pytest.mark.parametrize("algorithm", ("pagerank", "sssp"))
    def test_mmap_narrow_matches_ram_int64(self, tmp_path, backend, algorithm):
        g = generators.power_law(48, 180, seed=5, weighted=True)
        save_csr_dir(g.narrowed(), tmp_path / "csr")
        mapped = load_csr_dir(tmp_path / "csr", mmap=True)
        baseline = g.astype(index_dtype=np.int64)
        hardware = HardwareConfig.scaled(num_cores=4)
        kwargs = dict(max_rounds=600, backend=backend)
        want = run_system(
            "depgraph-h", baseline, make_algorithm(algorithm), hardware,
            **kwargs,
        )
        got = run_system(
            "depgraph-h", mapped, make_algorithm(algorithm), hardware,
            **kwargs,
        )
        assert np.array_equal(
            np.asarray(want.states, dtype=np.float64),
            np.asarray(got.states, dtype=np.float64),
        )
        assert want.cycles == got.cycles
        assert want.rounds == got.rounds
