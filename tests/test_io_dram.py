"""Tests for graph file I/O and the bandwidth-aware DRAM model."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.io import (
    from_string,
    load_csr,
    load_edge_list,
    save_csr,
    save_edge_list,
)
from repro.hardware.config import HardwareConfig
from repro.hardware.dram import DRAMModel
from repro.hardware.hierarchy import MemorySystem


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, tmp_path):
        g = generators.power_law(60, 200, seed=1)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path, num_vertices=60)
        assert loaded == g

    def test_roundtrip_weighted(self, tmp_path):
        g = generators.power_law(40, 120, seed=2, weighted=True)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path, num_vertices=40)
        assert loaded == g

    def test_snap_style_comments(self):
        g = from_string(
            "# Nodes: 3 Edges: 2\n"
            "# src dst\n"
            "0\t1\n"
            "1\t2\n"
        )
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_weight_autodetect(self):
        g = from_string("0 1 2.5\n1 0 0.5\n")
        assert g.is_weighted
        assert g.edge_weight(0) == 2.5

    def test_vertex_count_inferred(self):
        g = from_string("0 9\n")
        assert g.num_vertices == 10

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            from_string("0\n")

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError):
            from_string("0 1 2.0\n1 2\n")

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            from_string("-1 2\n")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edge_list(path, num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0


class TestCSRBinaryIO:
    def test_roundtrip(self, tmp_path):
        g = generators.power_law(80, 300, seed=3, weighted=True)
        path = tmp_path / "g.npz"
        save_csr(g, path)
        assert load_csr(path) == g

    def test_roundtrip_unweighted(self, tmp_path):
        g = generators.power_law(80, 300, seed=3)
        path = tmp_path / "g.npz"
        save_csr(g, path)
        loaded = load_csr(path)
        assert loaded == g
        assert not loaded.is_weighted


class TestDRAMModel:
    def test_idle_channel_base_latency(self):
        dram = DRAMModel(channels=4, base_latency=100)
        assert dram.access(0, now=0.0) == 100

    def test_back_to_back_queues(self):
        dram = DRAMModel(channels=1, base_latency=100, service_cycles=10.0)
        first = dram.access(0, now=0.0)
        second = dram.access(64, now=0.0)  # same channel, still busy
        assert first == 100
        assert second > 100
        assert dram.average_queueing() > 0

    def test_spread_channels_no_queueing(self):
        dram = DRAMModel(channels=8, base_latency=100, service_cycles=10.0)
        lines = [line for line in range(64) if dram.channel_of(line) != dram.channel_of(0)]
        dram.access(0, now=0.0)
        assert dram.access(lines[0], now=0.0) == 100

    def test_later_requests_find_channel_free(self):
        dram = DRAMModel(channels=1, base_latency=100, service_cycles=10.0)
        dram.access(0, now=0.0)
        assert dram.access(64, now=1000.0) == 100

    def test_reset(self):
        dram = DRAMModel(channels=1)
        dram.access(0, now=0.0)
        dram.reset()
        assert dram.requests == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMModel(channels=0)
        with pytest.raises(ValueError):
            DRAMModel(service_cycles=0)


class TestBandwidthAwareHierarchy:
    def test_disabled_by_default(self):
        ms = MemorySystem(HardwareConfig.scaled(num_cores=1))
        assert ms.dram is None

    def test_enabled_via_config(self):
        from dataclasses import replace

        cfg = replace(HardwareConfig.scaled(num_cores=1), dram_channels=12)
        ms = MemorySystem(cfg)
        assert ms.dram is not None
        # a burst of misses at the same instant shows queueing on some
        latencies = [ms.access(0, i * 64, now=0.0) for i in range(64)]
        assert max(latencies) >= cfg.dram_latency

    def test_functional_results_unchanged(self):
        """The DRAM model affects timing only, never final states."""
        from dataclasses import replace

        from repro import algorithms, runtime

        g = generators.power_law(80, 400, seed=5, weighted=True)
        g = generators.ensure_reachable(g, 0, seed=5)
        base_hw = HardwareConfig.scaled(num_cores=4)
        bw_hw = replace(base_hw, dram_channels=12)
        a = runtime.run("depgraph-h", g, algorithms.SSSP(0), base_hw)
        b = runtime.run("depgraph-h", g, algorithms.SSSP(0), bw_hw)
        assert np.array_equal(a.states, b.states)
