"""Unit tests for the HATS / Minnow / PHI accelerator models."""

import pytest

from repro.accel.hats import HATSScheduler, PrefetchTimeline
from repro.accel.minnow import MinnowWorklist
from repro.accel.phi import PHIUpdateBuffer
from repro.graph.csr import CSRGraph


class TestHATSScheduler:
    def graph(self):
        # two communities: {0,1,2} and {3,4,5}, bridge 2->3
        return CSRGraph.from_edges(
            6,
            [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (4, 5), (5, 4)],
        )

    def test_community_members_adjacent(self):
        g = self.graph()
        sched = HATSScheduler(g, bound=4)
        frontier = [0, 3, 1, 4]
        order = sched.order(frontier, set(frontier))
        # 0 and 1 (same community) end up adjacent, likewise 3 and 4
        pos = {v: i for i, v in enumerate(order)}
        assert abs(pos[0] - pos[1]) <= 2
        assert abs(pos[3] - pos[4]) <= 2

    def test_all_frontier_members_emitted_once(self):
        g = self.graph()
        sched = HATSScheduler(g, bound=2)
        frontier = [5, 0, 2]
        order = sched.order(frontier, {0, 1, 2, 3, 4, 5})
        assert sorted(order) == sorted(frontier)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            HATSScheduler(self.graph(), bound=0)


class TestPrefetchTimeline:
    def test_fetch_advances_time(self):
        t = PrefetchTimeline(capacity=4)
        ready1 = t.fetch(40.0)
        ready2 = t.fetch(40.0)
        assert ready2 > ready1

    def test_mlp_pipelines_latency(self):
        """per-fetch occupancy is latency/MLP + issue, not the full latency."""
        t = PrefetchTimeline(capacity=64)
        ready = t.fetch(40.0)
        assert ready == pytest.approx(
            PrefetchTimeline.ISSUE_CYCLES + 40.0 / PrefetchTimeline.MLP
        )

    def test_window_limits_runahead(self):
        t = PrefetchTimeline(capacity=2)
        t.fetch(10.0)
        t.fetch(10.0)
        # consumer is slow: entries consumed at t=1000, 2000
        t.note_consumed(1000.0)
        t.note_consumed(2000.0)
        # third fetch must wait for the first consumption
        ready = t.fetch(10.0)
        assert ready >= 1000.0

    def test_sync_to_moves_forward_only(self):
        t = PrefetchTimeline()
        t.sync_to(100.0)
        assert t.time == 100.0
        t.sync_to(50.0)
        assert t.time == 100.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PrefetchTimeline(capacity=0)


class TestMinnowWorklist:
    def test_priority_order(self):
        wl = MinnowWorklist(0)
        wl.push(1, 5.0)
        wl.push(2, 1.0)
        wl.push(3, 3.0)
        assert wl.pop() == 2
        assert wl.pop() == 3
        assert wl.pop() == 1
        assert wl.pop() is None

    def test_better_priority_supersedes(self):
        wl = MinnowWorklist(0)
        wl.push(1, 5.0)
        wl.push(1, 2.0)  # improvement: re-queued at better priority
        assert wl.pop() == 1
        assert wl.pop() is None  # stale entry filtered

    def test_worse_priority_ignored(self):
        wl = MinnowWorklist(0)
        wl.push(1, 2.0)
        wl.push(1, 5.0)  # no improvement: dropped
        assert wl.pop() == 1
        assert wl.empty

    def test_peek_priority_skips_stale(self):
        wl = MinnowWorklist(0)
        wl.push(1, 5.0)
        wl.push(1, 2.0)
        assert wl.peek_priority() == 2.0

    def test_fifo_among_equal_priorities(self):
        wl = MinnowWorklist(0)
        wl.push(7, 1.0)
        wl.push(9, 1.0)
        assert wl.pop() == 7
        assert wl.pop() == 9


class TestPHIUpdateBuffer:
    def test_first_touch_not_coalesced(self):
        buf = PHIUpdateBuffer(0, capacity_lines=4)
        assert not buf.scatter(100)
        assert buf.scatter(100)
        assert buf.coalesced == 1

    def test_capacity_evicts(self):
        buf = PHIUpdateBuffer(0, capacity_lines=2)
        buf.scatter(1)
        buf.scatter(2)
        buf.scatter(3)  # evicts something
        assert buf.flushes == 1
        assert buf.inserted == 3

    def test_flush_counts_and_clears(self):
        buf = PHIUpdateBuffer(0, capacity_lines=8)
        for line in range(5):
            buf.scatter(line)
        assert buf.flush() == 5
        assert buf.flush() == 0
        # after a flush, previously-buffered lines are first touches again
        assert not buf.scatter(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PHIUpdateBuffer(0, capacity_lines=0)
