"""The batched NumPy execution backend (``backend="vector"``).

Three layers:

* property-style unit tests for the segment-reduction primitives and the
  bulk CSR gather against brute-force loops over random CSR fragments;
* cost-charging: the precomputed per-vertex cost vectors folded per core
  must equal a brute-force per-vertex walk of the same model constants;
* end-to-end equivalence: the full execore golden matrix re-run under
  ``backend="vector"`` — min/max-accumulator states bit-identical to
  the scalar goldens, sum-type within the documented
  :data:`repro.runtime.vector.VECTOR_SUM_TOLERANCE` — plus the counter
  contract (``obs.backend.*`` stamped, span names backend-invariant).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import numpy as np
import pytest

from repro import algorithms, runtime
from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.hardware import HardwareConfig
from repro.runtime import depgraph_rt, minnow_rt, roundbased
from repro.runtime.vector import (
    VECTOR_SUM_TOLERANCE,
    VectorBackendError,
    VectorEngine,
    segment_max,
    segment_min,
    segment_sum,
    vector_unsupported_reason,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
META = json.loads((GOLDEN_DIR / "execore_meta.json").read_text())


# ----------------------------------------------------------------------
# Segment-reduction primitives vs brute force.
# ----------------------------------------------------------------------
def _random_segments(rng, max_segments=12, max_values=60):
    n = rng.randint(1, max_segments)
    size = rng.randint(0, max_values)
    segments = np.array(
        [rng.randrange(n) for _ in range(size)], dtype=np.int64
    )
    values = np.array(
        [rng.uniform(-50, 50) for _ in range(size)], dtype=np.float64
    )
    return values, segments, n


class TestSegmentReductions:
    def test_sum_matches_brute_force_on_fuzz(self):
        rng = random.Random(3)
        for _ in range(100):
            values, segments, n = _random_segments(rng)
            want = np.zeros(n)
            for v, s in zip(values, segments):
                want[s] += v
            np.testing.assert_allclose(
                segment_sum(values, segments, n), want, rtol=1e-12
            )

    def test_min_matches_brute_force_on_fuzz(self):
        rng = random.Random(5)
        for _ in range(100):
            values, segments, n = _random_segments(rng)
            want = np.full(n, np.inf)
            for v, s in zip(values, segments):
                want[s] = min(want[s], v)
            assert np.array_equal(segment_min(values, segments, n), want)

    def test_max_matches_brute_force_on_fuzz(self):
        rng = random.Random(7)
        for _ in range(100):
            values, segments, n = _random_segments(rng)
            want = np.full(n, -np.inf)
            for v, s in zip(values, segments):
                want[s] = max(want[s], v)
            assert np.array_equal(segment_max(values, segments, n), want)

    def test_empty_segments_hold_identities(self):
        values = np.array([1.0])
        segments = np.array([2], dtype=np.int64)
        assert segment_sum(values, segments, 4).tolist() == [0.0, 0.0, 1.0, 0.0]
        assert segment_min(values, segments, 4)[0] == np.inf
        assert segment_max(values, segments, 4)[0] == -np.inf

    def test_duplicate_targets_fold(self):
        # the scatter's common case: several edges into one target vertex
        values = np.array([3.0, -1.0, 5.0])
        segments = np.array([1, 1, 1], dtype=np.int64)
        assert segment_sum(values, segments, 2)[1] == 7.0
        assert segment_min(values, segments, 2)[1] == -1.0
        assert segment_max(values, segments, 2)[1] == 5.0


def _random_csr(rng, max_vertices=20, edge_prob=0.25):
    n = rng.randint(2, max_vertices)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < edge_prob
    ]
    if not edges:
        edges = [(0, 1)]
    return CSRGraph.from_edges(n, edges)


class TestBulkGather:
    """The round loop's CSR slice gather, isolated and fuzzed."""

    @staticmethod
    def gather(graph, src):
        offsets = graph.offsets
        degrees = np.diff(offsets)
        counts = degrees[src]
        total = int(counts.sum())
        starts = offsets[src]
        firsts = np.repeat(
            starts - np.insert(np.cumsum(counts), 0, 0)[:-1], counts
        )
        return np.arange(total, dtype=np.int64) + firsts

    def test_matches_per_vertex_ranges_on_fuzz(self):
        rng = random.Random(11)
        for _ in range(50):
            graph = _random_csr(rng)
            n = graph.num_vertices
            src = np.array(
                sorted(rng.sample(range(n), rng.randint(1, n))),
                dtype=np.int64,
            )
            src = src[np.diff(graph.offsets)[src] > 0]
            if not src.size:
                continue
            edge_idx = self.gather(graph, src)
            want = []
            for v in src:
                begin, end = graph.edge_range(int(v))
                want.extend(range(begin, end))
            assert edge_idx.tolist() == want


# ----------------------------------------------------------------------
# Cost charging: vectors vs a brute-force walk of the same model.
# ----------------------------------------------------------------------
class TestCostCharging:
    def make_engine(self, cores=4):
        rng = random.Random(13)
        graph = _random_csr(rng, max_vertices=40)
        hw = HardwareConfig.scaled(num_cores=cores)
        profile = roundbased.vector_profile(roundbased.LIGRA_O, hw)
        return (
            VectorEngine(
                graph, algorithms.make("pagerank"), hw, "ligra-o", profile
            ),
            hw,
        )

    def test_per_core_totals_match_per_vertex_sums(self):
        engine, hw = self.make_engine()
        ctx = engine.ctx
        rng = random.Random(17)
        n = engine.n
        applied = np.array(
            sorted(rng.sample(range(n), n // 2)), dtype=np.int64
        )
        scattering = applied[np.diff(ctx.graph.offsets)[applied] > 0]
        clocks0 = list(ctx.clock)
        counts = engine._charge_round(applied, scattering)

        want_clock = [0.0] * ctx.num_cores
        want_counts = [0] * ctx.num_cores
        simd = hw.timing.simd_factor
        for v in applied.tolist():
            core = int(engine.owner[v])
            want_counts[core] += 1
            want_clock[core] += (
                engine.apply_compute[v] / simd
                + engine.apply_mem[v]
                + engine.apply_overhead[v]
            )
        for v in scattering.tolist():
            core = int(engine.owner[v])
            want_clock[core] += (
                engine.scatter_compute[v] / simd
                + engine.scatter_mem[v]
                + engine.scatter_overhead[v]
            )
        assert counts.tolist() == want_counts
        got = [c - c0 for c, c0 in zip(ctx.clock, clocks0)]
        np.testing.assert_allclose(got, want_clock, rtol=1e-12)

    def test_zero_degree_vertices_charge_no_scatter_lines(self):
        engine, _ = self.make_engine()
        zero_deg = np.nonzero(engine.degrees == 0)[0]
        if zero_deg.size:
            assert not engine.scatter_compute[zero_deg].any()
            assert not engine.scatter_overhead[zero_deg].any()

    def test_scatter_cost_grows_with_degree(self):
        engine, _ = self.make_engine()
        hi = int(np.argmax(engine.degrees))
        lo_candidates = np.nonzero(engine.degrees == 1)[0]
        if lo_candidates.size and engine.degrees[hi] > 1:
            lo = int(lo_candidates[0])
            assert engine.scatter_mem[hi] > engine.scatter_mem[lo]
            assert engine.scatter_compute[hi] > engine.scatter_compute[lo]


# ----------------------------------------------------------------------
# The support contract.
# ----------------------------------------------------------------------
class TestSupportProbe:
    def test_stock_algorithms_supported(self):
        for name in ("pagerank", "katz", "sssp", "bfs", "wcc", "sswp"):
            assert vector_unsupported_reason(algorithms.make(name)) is None

    def test_kcore_rejected_with_reason(self):
        reason = vector_unsupported_reason(algorithms.make("kcore"))
        assert reason is not None and "transformable" in reason

    def test_run_raises_clean_error_for_kcore(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(VectorBackendError, match="kcore"):
            runtime.run(
                "ligra",
                graph,
                algorithms.make("kcore"),
                HardwareConfig.scaled(num_cores=2),
                backend="vector",
            )

    def test_unknown_backend_rejected(self):
        graph = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(KeyError, match="unknown backend"):
            runtime.run(
                "ligra",
                graph,
                algorithms.make("pagerank"),
                HardwareConfig.scaled(num_cores=2),
                backend="gpu",
            )


# ----------------------------------------------------------------------
# Family profiles: span names are backend-invariant.
# ----------------------------------------------------------------------
class TestFamilyProfiles:
    def test_span_names_match_scalar_families(self):
        hw = HardwareConfig.scaled(num_cores=8)
        assert roundbased.vector_profile(roundbased.LIGRA, hw).span == "vertex"
        assert minnow_rt.vector_profile(hw).span == "pop"
        opts = depgraph_rt.DepGraphOptions()
        assert depgraph_rt.vector_profile(opts, hw).span == "root"

    def test_depgraph_software_pays_sw_traversal(self):
        hw = HardwareConfig.scaled(num_cores=8)
        sw = depgraph_rt.vector_profile(
            depgraph_rt.DepGraphOptions(hardware=False), hw
        )
        hw_prof = depgraph_rt.vector_profile(
            depgraph_rt.DepGraphOptions(hardware=True), hw
        )
        assert sw.edge_overhead == hw.timing.sw_traverse_op
        assert hw_prof.edge_overhead == depgraph_rt.BUFFER_POP_CYCLES
        assert sw.edge_overhead > hw_prof.edge_overhead

    def test_single_core_roundbased_pays_no_atomics(self):
        assert (
            roundbased.vector_profile(
                roundbased.LIGRA_O, HardwareConfig.scaled(num_cores=1)
            ).edge_overhead
            == 0.0
        )


# ----------------------------------------------------------------------
# Golden equivalence: the execore matrix under backend="vector".
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_states():
    return np.load(GOLDEN_DIR / "execore_states.npz")


@pytest.fixture(scope="module")
def golden_graphs():
    cache = {}

    def get(dataset):
        if dataset not in cache:
            scale = (
                META["scale"]
                if dataset == META["dataset"]
                else META["alt_scale"]
            )
            cache[dataset] = datasets.load(dataset, scale=scale, weighted=True)
        return cache[dataset]

    return get


def _make_algorithm(name):
    if name == "sssp":
        return algorithms.make("sssp", source=0)
    return algorithms.make(name)


@pytest.mark.parametrize("key", sorted(META["runs"]))
def test_vector_states_match_golden(key, golden_states, golden_graphs):
    """Every scalar golden configuration, re-run under the vector backend.

    States only: simulated cycles differ by design (flat cost vectors vs
    the event-accurate model — DESIGN.md, substitution 7), but the
    *answer* must agree — bit-identical for min/max accumulators, within
    the documented tolerance for sum-type.
    """
    info = META["runs"][key]
    graph = golden_graphs(info["dataset"])
    hw = HardwareConfig.scaled(num_cores=META["cores"])
    result = runtime.run(
        info["system"],
        graph,
        _make_algorithm(info["algorithm"]),
        hw,
        steal_policy=info["steal_policy"],
        reorder=info["reorder"],
        backend="vector",
    )
    got = np.asarray(result.states, dtype=np.float64)
    golden = golden_states[key]
    if info["algorithm"] == "pagerank":  # sum accumulator: tolerance
        both_inf = np.isinf(got) & np.isinf(golden)
        diff = np.max(np.abs(np.where(both_inf, 0.0, got - golden)))
        assert diff < VECTOR_SUM_TOLERANCE
    else:  # min-style accumulators must be bit-identical
        assert np.array_equal(got, golden)
    assert bool(result.converged)


# ----------------------------------------------------------------------
# The counter contract.
# ----------------------------------------------------------------------
class TestCounterContract:
    @pytest.fixture(scope="class")
    def pair(self):
        graph = datasets.load("GL", scale=0.05, weighted=True)
        hw = HardwareConfig.scaled(num_cores=8)
        scalar = runtime.run(
            "depgraph-h", graph, algorithms.make("pagerank"), hw
        )
        vector = runtime.run(
            "depgraph-h",
            graph,
            algorithms.make("pagerank"),
            hw,
            backend="vector",
        )
        return scalar, vector

    def test_backend_flag_stamped_on_both(self, pair):
        scalar, vector = pair
        assert scalar.extra["obs.backend.vector"] == 0.0
        assert vector.extra["obs.backend.vector"] == 1.0

    def test_vector_counters_present(self, pair):
        _, vector = pair
        for name in (
            "obs.backend.batches",
            "obs.backend.edges_gathered",
            "obs.backend.applied_vertices",
            "obs.backend.flushes",
        ):
            assert vector.extra[name] > 0.0, name

    def test_span_names_invariant_across_backends(self, pair):
        scalar, vector = pair
        scalar_spans = {
            k for k in scalar.extra if k.startswith("obs.span.")
        }
        vector_spans = {
            k for k in vector.extra if k.startswith("obs.span.")
        }
        assert scalar_spans == vector_spans
        assert vector.extra["obs.span.root.count"] > 0.0

    def test_shared_counter_families_present(self, pair):
        _, vector = pair
        # the families the perf gate and metrics artifacts read
        for name in (
            "obs.sim.cycles",
            "obs.cache.llc.hit_rate",
            "obs.sched.steals_attempted",
            "obs.reorder.applied",
        ):
            assert name in vector.extra, name

    def test_edge_ops_and_updates_accounted(self, pair):
        _, vector = pair
        assert vector.total_updates == int(
            vector.extra["obs.backend.applied_vertices"]
        )
        assert vector.extra["obs.backend.edges_gathered"] > 0


# ----------------------------------------------------------------------
# CLI smoke.
# ----------------------------------------------------------------------
class TestCLI:
    def test_run_accepts_backend_flag(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run",
                "--system",
                "ligra",
                "--dataset",
                "GL",
                "--algorithm",
                "sssp",
                "--scale",
                "0.05",
                "--cores",
                "4",
                "--backend",
                "vector",
            ]
        )
        assert code == 0
        assert "converged=True" in capsys.readouterr().out
