"""The scale sweep (``experiment scale``) and its ``check_slo`` gate.

The sweep itself spawns one child process per measurement (peak RSS via
``ru_maxrss`` is a process-lifetime high-water mark), so the smoke run
here uses the smallest config that still exercises every phase: two
levels, scalar capped at the first, bit-identity controls at the
smallest.  The gate tests drive ``check_slo.py --section scale`` on
synthetic payloads — no child processes.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import scale_sweep
from repro.experiments.scale_sweep import (
    MEM_COUNTER_FAMILY,
    ScaleConfig,
    _mem_counters,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def tiny_config(**overrides):
    kwargs = dict(
        base_vertices=48,
        avg_degree=8,
        levels=(1, 2),
        scalar_cap=1,
        cores=4,
        chunk_edges=64,
        seed=3,
        max_rounds=600,
    )
    kwargs.update(overrides)
    return ScaleConfig(**kwargs)


class TestMemCounters:
    def test_family_zero_seeded_and_prefixed(self):
        counters = _mem_counters()
        assert set(counters) == {"obs." + name for name in MEM_COUNTER_FAMILY}
        assert counters["obs.mem.graph_bytes"] == 0.0
        assert counters["obs.mem.peak_rss_kb"] > 0.0

    def test_gate_config_pins_the_identity(self):
        config = tiny_config()
        identity = config.gate_config()
        assert identity["levels"] == [1, 2]
        assert identity["algorithm"] == scale_sweep.SWEEP_ALGORITHM
        assert identity["system"] == scale_sweep.SWEEP_SYSTEM


class TestScaleSweepSmoke:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("scale")
        return scale_sweep.run(tiny_config(), workdir=str(workdir))

    def test_states_and_cycles_width_invariant(self, sweep):
        _, payload = sweep
        assert payload["state_match"] is True
        assert payload["cycles_match"] is True
        assert payload["match_level"] == "1x"

    def test_every_phase_reported_per_level(self, sweep):
        table, payload = sweep
        phases = {
            (row[0], row[1]) for row in table.rows
        }
        assert ("1x", "build") in phases
        assert ("1x", "scalar") in phases
        assert ("1x", "vector") in phases
        assert ("1x", "vector-ram64") in phases
        assert ("1x", "serve") in phases
        assert ("2x", "vector") in phases
        # the scalar cap shows up as an explicit skipped row
        assert ("2x", "scalar") in phases
        assert len(payload["levels"]) == 2

    def test_counters_carry_the_mem_family(self, sweep):
        _, payload = sweep
        family = set(payload["mem_counter_family"])
        for level in payload["levels"].values():
            assert family <= set(level["build"]["counters"])
            assert family <= set(level["serve"]["counters"])
            for backend in level["backends"].values():
                assert family <= set(backend["counters"])
            assert level["build"]["counters"]["obs.mem.peak_rss_kb"] > 0

    def test_narrowing_engaged(self, sweep):
        _, payload = sweep
        for level in payload["levels"].values():
            counters = level["build"]["counters"]
            assert level["index_dtype"] == "int32"
            assert (
                counters["obs.mem.graph_bytes"]
                < counters["obs.mem.graph_bytes_int64"]
            )

    def test_artifacts_roundtrip(self, sweep, tmp_path):
        table, payload = sweep
        table_path, metrics_path = scale_sweep.write_artifacts(
            table, payload, out_dir=str(tmp_path)
        )
        assert "scale_sweep" in table_path.read_text(encoding="utf-8")
        restored = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert restored["state_match"] is True
        assert restored["config"] == payload["config"]


def load_check_slo():
    spec = importlib.util.spec_from_file_location(
        "check_slo", REPO_ROOT / "benchmarks" / "check_slo.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def synthetic_scale_metrics(
    tmp_path,
    rss_small=40_000.0,
    rss_large=42_000.0,
    graph_ratio=0.5,
    vector_cycles=1_000_000.0,
    state_match=True,
    cycles_match=True,
):
    config = tiny_config().gate_config()

    def level(rss, bytes_int64, cycles):
        return {
            "index_dtype": "int32",
            "build": {
                "counters": {
                    "obs.mem.peak_rss_kb": rss,
                    "obs.mem.graph_bytes": bytes_int64 * graph_ratio,
                    "obs.mem.graph_bytes_int64": bytes_int64,
                }
            },
            "backends": {"vector": {"cycles": cycles}},
        }

    payload = {
        "config": config,
        "match_level": "1x",
        "state_match": state_match,
        "cycles_match": cycles_match,
        "levels": {
            "1x": level(rss_small, 1.0e6, vector_cycles),
            "2x": level(rss_large, 2.0e6, vector_cycles * 2),
        },
    }
    path = tmp_path / "scale_metrics.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestScaleGate:
    def seed(self, tmp_path, check_slo, **kwargs):
        baselines = tmp_path / "baselines.json"
        good = synthetic_scale_metrics(tmp_path, **kwargs)
        assert (
            check_slo.main(
                [
                    "--section", "scale", "--update",
                    "--metrics", str(good),
                    "--baselines", str(baselines),
                ]
            )
            == 0
        )
        return baselines

    def check(self, check_slo, metrics, baselines):
        return check_slo.main(
            [
                "--section", "scale",
                "--metrics", str(metrics),
                "--baselines", str(baselines),
            ]
        )

    def test_update_then_check_round_trip(self, tmp_path):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        good = synthetic_scale_metrics(tmp_path)
        assert self.check(check_slo, good, baselines) == 0
        payload = json.loads(baselines.read_text(encoding="utf-8"))
        assert set(payload["scale"]["levels"]) == {"1x", "2x"}

    def test_state_mismatch_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        bad = synthetic_scale_metrics(tmp_path, state_match=False)
        assert self.check(check_slo, bad, baselines) == 1
        assert "states diverged" in capsys.readouterr().out

    def test_cycles_drift_with_width_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        bad = synthetic_scale_metrics(tmp_path, cycles_match=False)
        assert self.check(check_slo, bad, baselines) == 1
        assert "storage width" in capsys.readouterr().out

    def test_rss_over_budget_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        bloated = synthetic_scale_metrics(
            tmp_path, rss_small=40_000.0 * 1.51 + 49_153.0
        )
        assert self.check(check_slo, bloated, baselines) == 1
        assert "build peak RSS" in capsys.readouterr().out

    def test_rss_not_flat_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        # baseline itself has the blow-up, so the per-level budget check
        # passes — only the sweep-internal flatness check can catch it
        check_slo_module = check_slo
        rss_large = 40_000.0 * 1.6 + 49_153.0
        baselines = self.seed(tmp_path, check_slo_module, rss_large=rss_large)
        bad = synthetic_scale_metrics(tmp_path, rss_large=rss_large)
        assert self.check(check_slo_module, bad, baselines) == 1
        assert "not flat" in capsys.readouterr().out

    def test_narrowing_disengaged_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        wide = synthetic_scale_metrics(tmp_path, graph_ratio=1.0)
        assert self.check(check_slo, wide, baselines) == 1
        assert "narrowing did not engage" in capsys.readouterr().out

    def test_vector_cycles_regression_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        slow = synthetic_scale_metrics(tmp_path, vector_cycles=1.3e6)
        assert self.check(check_slo, slow, baselines) == 1
        assert "vector cycles" in capsys.readouterr().out

    def test_config_mismatch_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        drifted = synthetic_scale_metrics(tmp_path)
        payload = json.loads(drifted.read_text(encoding="utf-8"))
        payload["config"]["seed"] = 99
        drifted.write_text(json.dumps(payload), encoding="utf-8")
        assert self.check(check_slo, drifted, baselines) == 1
        assert "does not match baseline config" in capsys.readouterr().out

    def test_missing_level_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = self.seed(tmp_path, check_slo)
        partial = synthetic_scale_metrics(tmp_path)
        payload = json.loads(partial.read_text(encoding="utf-8"))
        del payload["levels"]["2x"]
        partial.write_text(json.dumps(payload), encoding="utf-8")
        assert self.check(check_slo, partial, baselines) == 1
        assert "missing from the sweep" in capsys.readouterr().out
