"""Tests for the traffic harness (repro.serve.traffic) and its SLO gate.

Covers the Zipf catalog, property tests for ``Batcher`` single-flight
coalescing and ``ResultCache`` LRU eviction under randomized request
streams (checked against reference models), the scalar-vs-vector serve
differential, bit-determinism of same-seed traffic runs (counters and
latency histograms), admission-control edge cases (queue-full
shed-newest ordering, the exact deadline-boundary cycle, zero-capacity
queues and caches), and the sweep artifacts + ``check_slo.py`` gate.
"""

import importlib.util
import json
import random
from collections import OrderedDict
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main
from repro.graph import datasets
from repro.serve import (
    Batcher,
    GraphService,
    QueryKey,
    ResultCache,
    ServeConfig,
    TrafficConfig,
    TrafficRun,
    ZipfChooser,
    default_catalog,
    run_level,
)
from repro.serve.traffic import run_sweep, write_artifacts

REPO_ROOT = Path(__file__).resolve().parents[1]

#: warm-vs-cold / scalar-vs-vector agreement bound for sum-type
#: accumulators (the cross-schedule spread; see docs/SERVING.md)
SUM_TOL = 1e-3


def bench_graph():
    return datasets.load("AZ", scale=0.1)


def fast_config(**overrides):
    """A harness config small enough for unit tests: cheap min/max
    queries only (no pagerank), short think times, frequent mutations."""
    defaults = dict(
        scale=0.05,
        algorithms=("sssp", "bfs"),
        requests_per_level=8,
        think_cycles=30_000.0,
        mutation_every_cycles=150_000.0,
        levels=(1.0, 2.0),
    )
    defaults.update(overrides)
    return TrafficConfig(**defaults)


def key(i, version=0):
    return QueryKey("algo", (("p", i),), version)


class TestZipfChooser:
    def test_probabilities_sum_to_one_and_decrease(self):
        zipf = ZipfChooser(8, 1.1)
        probs = [zipf.probability(rank) for rank in range(8)]
        assert sum(probs) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_zero_exponent_is_uniform(self):
        zipf = ZipfChooser(5, 0.0)
        for rank in range(5):
            assert zipf.probability(rank) == pytest.approx(0.2)

    def test_picks_in_range_and_skewed_to_head(self):
        zipf = ZipfChooser(6, 1.1)
        rng = random.Random(7)
        draws = [zipf.pick(rng) for _ in range(2000)]
        assert all(0 <= d < 6 for d in draws)
        counts = [draws.count(rank) for rank in range(6)]
        assert counts[0] == max(counts)  # rank 0 is the most popular

    def test_picks_deterministic_under_one_seed(self):
        zipf = ZipfChooser(6, 1.1)
        a = [zipf.pick(random.Random(3)) for _ in range(1)]
        b = [zipf.pick(random.Random(3)) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfChooser(0, 1.0)
        with pytest.raises(ValueError):
            ZipfChooser(4, -0.5)


class TestDefaultCatalog:
    def test_rank_order_preserved_for_known_algorithms(self):
        catalog = default_catalog(("sssp", "bfs"))
        assert [spec.algorithm for spec in catalog] == [
            "sssp", "sssp", "bfs", "sssp", "bfs",
        ]

    def test_unranked_algorithm_appended_with_default_params(self):
        catalog = default_catalog(("sssp", "kcore"))
        assert catalog[-1].algorithm == "kcore"
        assert catalog[-1].params == ()

    def test_duplicates_collapse(self):
        assert default_catalog(("wcc", "wcc")) == default_catalog(("wcc",))

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            default_catalog(())


class TestBatcherProperties:
    """Single-flight coalescing vs a reference model, under a randomized
    add/pop stream: FIFO by first arrival, group integrity, exact
    pending/group accounting."""

    def test_randomized_stream_matches_model(self):
        rng = random.Random(1234)
        batcher = Batcher()
        model = OrderedDict()  # key -> list of requests, FIFO by first add
        next_token = 0
        for _ in range(600):
            if rng.random() < 0.65 or not model:
                k = key(rng.randrange(6), rng.randrange(3))
                token = next_token
                next_token += 1
                size = batcher.add(k, token)
                model.setdefault(k, []).append(token)
                assert size == len(model[k])
            else:
                popped = batcher.next_batch()
                want_key = next(iter(model))
                want_group = model.pop(want_key)
                assert popped == (want_key, want_group)
            assert len(batcher) == sum(len(g) for g in model.values())
            assert batcher.groups == len(model)
        while model:
            want_key = next(iter(model))
            assert batcher.next_batch() == (want_key, model.pop(want_key))
        assert batcher.next_batch() is None
        assert len(batcher) == 0 and batcher.groups == 0

    def test_coalescing_returns_every_request_exactly_once(self):
        rng = random.Random(5)
        batcher = Batcher()
        tokens = list(range(200))
        for token in tokens:
            batcher.add(key(rng.randrange(4)), token)
        seen = []
        while True:
            batch = batcher.next_batch()
            if batch is None:
                break
            seen.extend(batch[1])
        assert sorted(seen) == tokens  # nothing lost, nothing duplicated


class TestResultCacheProperties:
    """Bounded-LRU invariants vs an OrderedDict reference model under a
    randomized get/put stream: capacity never exceeded, eviction order
    is exactly least-recently-*used*, hit/miss/eviction counts exact."""

    def test_randomized_stream_matches_lru_model(self):
        rng = random.Random(99)
        capacity = 8
        cache = ResultCache(capacity)
        model = OrderedDict()
        hits = misses = evictions = 0
        for step in range(1200):
            k = key(rng.randrange(24))
            if rng.random() < 0.5:
                got = cache.get(k)
                if k in model:
                    model.move_to_end(k)
                    hits += 1
                    assert got == model[k]
                else:
                    misses += 1
                    assert got is None
            else:
                cache.put(k, step)
                if k in model:
                    model.move_to_end(k)
                model[k] = step
                while len(model) > capacity:
                    model.popitem(last=False)
                    evictions += 1
            assert len(cache) == len(model) <= capacity
            assert (cache.hits, cache.misses, cache.evictions) == (
                hits, misses, evictions,
            )
        for k in model:  # survivors agree exactly
            assert k in cache
        assert cache.hit_rate == pytest.approx(hits / (hits + misses))

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(0)
        for i in range(10):
            cache.put(key(i), i)
            assert cache.get(key(i)) is None
        assert len(cache) == 0 and cache.evictions == 0
        assert cache.misses == 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_invalidate_before_drops_old_versions_only(self):
        cache = ResultCache(16)
        for version in range(6):
            cache.put(key(0, version), version)
        assert cache.invalidate_before(3) == 3
        for version in range(6):
            assert (key(0, version) in cache) == (version >= 3)


class TestBackendDifferential:
    """The serve path must agree across execution backends: bit-identical
    states for min/max accumulators, <= 1e-3 for sum-type."""

    @staticmethod
    def run_once(backend, algorithm, params):
        service = GraphService(
            bench_graph(), ServeConfig(cores=4, backend=backend)
        )
        service.submit(algorithm, dict(params))
        (response,) = service.drain()
        assert response.ok and response.run is not None
        return response.run.result.states

    def test_minmax_states_bit_identical(self):
        scalar = self.run_once("scalar", "sssp", {"source": 0})
        vector = self.run_once("vector", "sssp", {"source": 0})
        assert np.array_equal(scalar, vector)

    def test_sum_type_states_within_tolerance(self):
        scalar = self.run_once("scalar", "pagerank", {})
        vector = self.run_once("vector", "pagerank", {})
        assert float(np.max(np.abs(scalar - vector))) <= SUM_TOL

    def test_backend_flows_through_serve_config(self):
        service = GraphService(
            bench_graph(), ServeConfig(cores=4, backend="vector")
        )
        service.submit("sssp", {"source": 0})
        (response,) = service.drain()
        assert response.run.result.extra["obs.backend.vector"] == 1.0


class TestTrafficDeterminism:
    def test_closed_loop_same_seed_bit_identical(self):
        config = fast_config()
        first = run_level(config, 2.0)
        second = run_level(config, 2.0)
        assert first.counters == second.counters
        assert first.latencies == second.latencies
        assert first.counters.keys() == second.counters.keys()

    def test_open_loop_same_seed_bit_identical(self):
        config = fast_config(mode="open")
        first = run_level(config, 20.0)
        second = run_level(config, 20.0)
        assert first.counters == second.counters
        assert first.latencies == second.latencies

    def test_latency_histogram_reported_in_counters(self):
        stats = run_level(fast_config(), 2.0)
        for suffix in ("count", "sum", "mean", "min", "max"):
            assert f"obs.traffic.latency_cycles.{suffix}" in stats.counters
        assert stats.counters["obs.traffic.latency_cycles.count"] == float(
            stats.ok
        )

    def test_traffic_counter_family_zero_seeded(self):
        # a run with mutations disabled still reports the whole family
        stats = run_level(fast_config(mutation_every_cycles=0.0), 1.0)
        for name in ("arrivals", "mutations", "completed", "ok", "shed"):
            assert f"obs.traffic.{name}" in stats.counters
        assert stats.counters["obs.traffic.mutations"] == 0.0

    def test_warm_and_cold_control_share_event_streams(self):
        config = fast_config()
        warm = TrafficRun(config, 2.0, warm=True)
        cold = TrafficRun(config, 2.0, warm=False)
        # same Zipf draws, think times, and mutation schedule: the cold
        # column isolates caching + warm-start, not workload luck
        assert [warm.spec_rng.random() for _ in range(8)] == [
            cold.spec_rng.random() for _ in range(8)
        ]
        assert warm.time_rng.random() == cold.time_rng.random()
        assert warm.mut_rng.random() == cold.mut_rng.random()

    def test_distinct_seeds_diverge(self):
        base = run_level(fast_config(), 2.0)
        other = run_level(fast_config(seed=1), 2.0)
        assert base.latencies != other.latencies


class TestAdmissionEdges:
    @staticmethod
    def make_service(**overrides):
        config = ServeConfig(
            cores=4,
            queue_limit=overrides.pop("queue_limit", 8),
            cache_capacity=overrides.pop("cache_capacity", 16),
            **overrides,
        )
        return GraphService(bench_graph(), config)

    def test_queue_full_sheds_newest_and_keeps_fifo_order(self):
        service = self.make_service(queue_limit=2)
        first = service.submit("sssp", {"source": 0})
        second = service.submit("bfs", {"source": 0})
        shed = service.submit("wcc")
        assert isinstance(first, int) and isinstance(second, int)
        assert shed.status == "shed-queue" and shed.request_id > second
        responses = service.drain()
        # the two admitted requests are untouched and answer in FIFO order
        assert [r.request_id for r in responses] == [first, second]
        assert all(r.ok for r in responses)

    def test_deadline_boundary_cycle_is_not_shed(self):
        # shedding is strict: waited > deadline, so waiting *exactly* the
        # deadline still gets served
        service = self.make_service()
        service.submit("sssp", {"source": 0}, deadline_cycles=1_000.0)
        service.advance_clock(1_000.0)
        (response,) = service.drain()
        assert response.ok
        assert service.metrics_snapshot()["obs.serve.shed_deadline"] == 0.0

    def test_one_cycle_past_deadline_is_shed(self):
        service = self.make_service()
        service.submit("sssp", {"source": 0}, deadline_cycles=1_000.0)
        service.advance_clock(1_000.5)
        (response,) = service.drain()
        assert response.status == "shed-deadline"
        assert service.metrics_snapshot()["obs.serve.shed_deadline"] == 1.0

    def test_zero_capacity_queue_sheds_everything(self):
        service = self.make_service(queue_limit=0)
        for _ in range(3):
            response = service.submit("sssp", {"source": 0})
            assert response.status == "shed-queue"
        snapshot = service.metrics_snapshot()
        assert snapshot["obs.serve.shed_queue"] == 3.0
        assert snapshot["obs.serve.admitted"] == 0.0

    def test_zero_capacity_cache_runs_engine_every_time(self):
        service = self.make_service(cache_capacity=0)
        for _ in range(2):
            service.submit("sssp", {"source": 0})
            service.drain()
        assert service.engine.runs == 2
        assert service.metrics_snapshot()["obs.serve.cache_hits"] == 0.0

    def test_advance_clock_never_rewinds(self):
        service = self.make_service()
        service.advance_clock(500.0)
        service.advance_clock(100.0)
        assert service.now_cycles == 500.0


class TestHarnessBehaviour:
    def test_closed_loop_reaches_target_terminals(self):
        config = fast_config()
        stats = run_level(config, 2.0)
        assert stats.completed >= config.requests_per_level
        assert stats.ok + stats.shed == stats.completed
        assert stats.arrivals >= stats.completed
        assert stats.mutations >= 1  # the background process actually ran

    def test_open_loop_offers_exactly_count_arrivals(self):
        config = fast_config(mode="open", mutation_every_cycles=0.0)
        stats = run_level(config, 25.0)
        assert stats.arrivals == config.requests_per_level
        assert stats.completed == stats.arrivals  # stream fully drained

    def test_bad_levels_rejected(self):
        with pytest.raises(ValueError):
            run_level(fast_config(), 0.0)
        with pytest.raises(ValueError):
            run_level(fast_config(mode="open"), 0.0)
        with pytest.raises(ValueError):
            run_level(fast_config(mode="oscillating"), 1.0)


def load_check_slo():
    spec = importlib.util.spec_from_file_location(
        "check_slo", REPO_ROOT / "benchmarks" / "check_slo.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def synthetic_metrics(tmp_path, p95=95_000.0, mean=50_000.0, shed=0.0,
                      cold_p95=90_000.0, cold_mean=200_000.0):
    config = TrafficConfig()
    payload = {
        "config": config.gate_config(),
        "levels": {
            "closed@1": {
                "offered_load": 1.0,
                "counters": {
                    "obs.traffic.latency_p95_cycles": p95,
                    "obs.traffic.latency_cycles.mean": mean,
                    "obs.traffic.shed_rate": shed,
                },
                "cold": {
                    "p95_cycles": cold_p95,
                    "shed_rate": 0.0,
                    "counters": {
                        "obs.traffic.latency_cycles.mean": cold_mean
                    },
                },
            }
        },
    }
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestCheckSLOGate:
    def test_update_then_check_round_trip(self, tmp_path, capsys):
        check_slo = load_check_slo()
        metrics = synthetic_metrics(tmp_path)
        baselines = tmp_path / "baselines.json"
        argv = ["--metrics", str(metrics), "--baselines", str(baselines)]
        assert check_slo.main(["--update"] + argv) == 0
        assert check_slo.main(argv) == 0
        payload = json.loads(baselines.read_text(encoding="utf-8"))
        assert "closed@1" in payload["traffic"]["levels"]

    def test_update_preserves_foreign_sections(self, tmp_path):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        baselines.write_text(json.dumps({"runs": {"keep": 1}}))
        metrics = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(metrics),
             "--baselines", str(baselines)]
        )
        payload = json.loads(baselines.read_text(encoding="utf-8"))
        assert payload["runs"] == {"keep": 1}  # check_baselines.py's key
        assert "traffic" in payload

    def test_p95_regression_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(good), "--baselines", str(baselines)]
        )
        slow = synthetic_metrics(
            tmp_path, p95=95_000.0 * 1.26 + 5_001.0, cold_p95=10**9
        )
        assert check_slo.main(
            ["--metrics", str(slow), "--baselines", str(baselines)]
        ) == 1
        assert "p95 latency" in capsys.readouterr().out

    def test_shed_rate_regression_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(good), "--baselines", str(baselines)]
        )
        shedding = synthetic_metrics(tmp_path, shed=0.06)
        assert check_slo.main(
            ["--metrics", str(shedding), "--baselines", str(baselines)]
        ) == 1
        assert "shed rate" in capsys.readouterr().out

    def test_warm_losing_to_cold_control_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(good), "--baselines", str(baselines)]
        )
        # mean not below the control: caching + warm-start stopped helping
        lazy = synthetic_metrics(tmp_path, mean=200_000.0)
        assert check_slo.main(
            ["--metrics", str(lazy), "--baselines", str(baselines)]
        ) == 1
        assert "not below cold control" in capsys.readouterr().out
        # p95 more than 10% past the control fails too
        tail = synthetic_metrics(tmp_path, p95=90_000.0 * 1.11)
        assert check_slo.main(
            ["--metrics", str(tail), "--baselines", str(baselines)]
        ) == 1

    def test_config_mismatch_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(good), "--baselines", str(baselines)]
        )
        payload = json.loads(good.read_text(encoding="utf-8"))
        payload["config"]["seed"] = 42
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(payload), encoding="utf-8")
        assert check_slo.main(
            ["--metrics", str(drifted), "--baselines", str(baselines)]
        ) == 1
        out = capsys.readouterr().out
        assert "seed" in out and "42" in out

    def test_missing_level_fails(self, tmp_path, capsys):
        check_slo = load_check_slo()
        baselines = tmp_path / "baselines.json"
        good = synthetic_metrics(tmp_path)
        check_slo.main(
            ["--update", "--metrics", str(good), "--baselines", str(baselines)]
        )
        payload = json.loads(good.read_text(encoding="utf-8"))
        payload["levels"]["closed@2"] = payload["levels"].pop("closed@1")
        renamed = tmp_path / "renamed.json"
        renamed.write_text(json.dumps(payload), encoding="utf-8")
        assert check_slo.main(
            ["--metrics", str(renamed), "--baselines", str(baselines)]
        ) == 1
        assert "missing from the sweep" in capsys.readouterr().out

    def test_committed_baselines_pass_against_committed_artifact(self):
        metrics = REPO_ROOT / "results" / "traffic_slo.metrics.json"
        baselines = REPO_ROOT / "benchmarks" / "baselines.json"
        assert load_check_slo().main(
            ["--metrics", str(metrics), "--baselines", str(baselines)]
        ) == 0


class TestSweepArtifacts:
    def test_sweep_writes_parsable_artifacts(self, tmp_path):
        config = fast_config(
            levels=(1.0, 2.0),
            requests_per_level=5,
            out_dir=str(tmp_path),
        )
        sweep = run_sweep(config)
        table_path, metrics_path = write_artifacts(sweep)
        assert table_path.exists() and metrics_path.exists()
        rendered = table_path.read_text(encoding="utf-8")
        assert "traffic_slo" in rendered and "cold_p95_kcyc" in rendered
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert payload["config"]["levels"] == [1.0, 2.0]
        assert set(payload["levels"]) == {"closed@1", "closed@2"}
        for level in payload["levels"].values():
            assert "obs.traffic.latency_p95_cycles" in level["counters"]
            assert "p95_cycles" in level["cold"]

    def test_no_cold_control_omits_cold_column(self, tmp_path):
        config = fast_config(
            levels=(1.0,),
            requests_per_level=4,
            cold_control=False,
            out_dir=str(tmp_path),
        )
        sweep = run_sweep(config)
        _, metrics_path = write_artifacts(sweep)
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert "cold" not in payload["levels"]["closed@1"]


class TestTrafficCLI:
    def test_traffic_subcommand_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "traffic",
                "--scale", "0.05",
                "--levels", "1,2",
                "--requests", "4",
                "--algorithms", "sssp,bfs",
                "--think-cycles", "30000",
                "--no-cold-control",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic_slo" in out
        payload = json.loads(
            (tmp_path / "traffic_slo.metrics.json").read_text(encoding="utf-8")
        )
        assert payload["config"]["scale"] == 0.05
        assert payload["config"]["algorithms"] == ["sssp", "bfs"]

    def test_open_mode_via_cli(self, tmp_path, capsys):
        code = main(
            [
                "traffic",
                "--scale", "0.05",
                "--mode", "open",
                "--levels", "10",
                "--requests", "5",
                "--algorithms", "sssp",
                "--mutation-every", "0",
                "--no-cold-control",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads(
            (tmp_path / "traffic_slo.metrics.json").read_text(encoding="utf-8")
        )
        assert set(payload["levels"]) == {"open@10"}
