"""White-box tests of the round-based executor: BSP vs async visibility,
ordering policies, and the policy registry."""

import numpy as np
import pytest

from repro import algorithms
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.hardware import HardwareConfig
from repro.runtime.roundbased import (
    LIGRA,
    LIGRA_O,
    POLICIES,
    RoundPolicy,
    run_roundbased,
)

HW2 = HardwareConfig.scaled(num_cores=2)
HW4 = HardwareConfig.scaled(num_cores=4)


class TestPolicyRegistry:
    def test_all_published_systems_present(self):
        assert set(POLICIES) == {
            "ligra",
            "ligra-o",
            "mosaic",
            "wonderland",
            "fbsgraph",
            "hats",
            "phi",
        }

    def test_sync_async_split_matches_paper(self):
        assert POLICIES["ligra"].synchronous
        assert POLICIES["mosaic"].synchronous
        assert not POLICIES["ligra-o"].synchronous
        assert not POLICIES["fbsgraph"].synchronous

    def test_only_plain_ligra_lacks_simd(self):
        assert not POLICIES["ligra"].simd
        assert POLICIES["ligra-o"].simd

    def test_phi_reduces_atomics(self):
        assert POLICIES["phi"].atomic_cycles < POLICIES["ligra-o"].atomic_cycles


class TestSyncVsAsyncRounds:
    def chain(self, n=24):
        return generators.chain(n, weighted=True)

    def test_sync_needs_round_per_hop(self):
        """BSP propagation crosses one hop per round on a chain."""
        g = self.chain(24)
        sync = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA)
        assert sync.rounds >= 24

    def test_async_is_no_slower_in_rounds(self):
        g = self.chain(24)
        sync = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA)
        async_res = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA_O)
        assert async_res.rounds <= sync.rounds

    def test_same_fixpoint(self):
        g = self.chain(24)
        sync = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA)
        async_res = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA_O)
        assert np.array_equal(sync.states, async_res.states)


class TestOrderingPolicies:
    def graph(self):
        g = generators.power_law(120, 700, alpha=1.9, seed=6, weighted=True)
        return generators.ensure_reachable(g, 0, seed=6)

    @pytest.mark.parametrize("ordering", ["id", "hubs_first", "dfs", "hats"])
    def test_every_ordering_converges_correctly(self, ordering):
        from repro.algorithms import reference

        policy = RoundPolicy(f"test-{ordering}", ordering=ordering)
        g = self.graph()
        result = run_roundbased(g, algorithms.SSSP(0), HW4, policy)
        exp = reference.sssp(g, 0)
        both = np.isinf(result.states) & np.isinf(exp)
        assert np.max(np.abs(np.where(both, 0, result.states - exp))) < 1e-9

    def test_work_stealing_can_be_disabled(self):
        policy = RoundPolicy("test-nosteal", work_stealing=False)
        g = self.graph()
        result = run_roundbased(g, algorithms.SSSP(0), HW4, policy)
        assert result.converged


class TestRoundLogs:
    def test_round_log_matches_rounds(self):
        g = generators.chain(10, weighted=True)
        result = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA)
        assert len(result.round_log) == result.rounds
        assert result.round_log[0].active_vertices == 1

    def test_updates_sum_across_rounds(self):
        g = generators.chain(10, weighted=True)
        result = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA)
        assert sum(r.updates for r in result.round_log) == result.total_updates


class TestNonConvergence:
    def test_max_rounds_reported(self):
        """A run cut off by max_rounds reports converged=False."""
        g = generators.chain(40, weighted=True)
        result = run_roundbased(g, algorithms.SSSP(0), HW2, LIGRA, max_rounds=3)
        assert not result.converged
        assert result.rounds == 3
