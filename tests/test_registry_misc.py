"""Tests for the system registry, run_many, and miscellaneous runtime
behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro import algorithms, runtime
from repro.graph import generators
from repro.hardware import HardwareConfig

HW = HardwareConfig.scaled(num_cores=4)


@pytest.fixture(scope="module")
def graph():
    g = generators.power_law(90, 450, seed=17, weighted=True)
    return generators.ensure_reachable(g, 0, seed=17)


class TestRegistry:
    def test_all_names_runnable(self, graph):
        for system in runtime.SYSTEM_NAMES:
            result = runtime.run(system, graph, algorithms.SSSP(0), HW)
            assert result.system == system

    def test_accelerator_and_software_subsets(self):
        assert set(runtime.ACCELERATOR_SYSTEMS) <= set(runtime.SYSTEM_NAMES)
        assert set(runtime.SOFTWARE_SYSTEMS) <= set(runtime.SYSTEM_NAMES)
        assert "depgraph-h" in runtime.ACCELERATOR_SYSTEMS

    def test_run_many_fresh_algorithms(self, graph):
        results = runtime.run_many(
            ("ligra-o", "depgraph-h"), graph, lambda: algorithms.SSSP(0), HW
        )
        assert set(results) == {"ligra-o", "depgraph-h"}
        assert np.array_equal(
            results["ligra-o"].states, results["depgraph-h"].states
        )

    def test_depgraph_options_forwarded(self, graph):
        result = runtime.run(
            "depgraph-h", graph, algorithms.SSSP(0), HW, stack_depth=3, lam=0.05
        )
        assert result.converged

    def test_h_w_ignores_hub_enabled_override(self, graph):
        result = runtime.run(
            "depgraph-h-w", graph, algorithms.SSSP(0), HW, hub_enabled=True
        )
        assert result.hub_index_entries == 0

    def test_default_hardware(self, graph):
        result = runtime.run("ligra-o", graph, algorithms.SSSP(0))
        assert result.num_cores == 64


class TestMinnowGuards:
    def test_max_pops_guard(self, graph):
        from repro.runtime.minnow_rt import run_minnow

        result = run_minnow(graph, algorithms.IncrementalPageRank(), HW, max_pops=20)
        assert not result.converged
        assert result.total_updates <= 20

    def test_minnow_engine_ops_counted(self, graph):
        result = runtime.run("minnow", graph, algorithms.SSSP(0), HW)
        assert result.engine_ops > 0


class TestSequentialBaseline:
    def test_single_core(self, graph):
        result = runtime.run("sequential", graph, algorithms.SSSP(0), HW)
        assert result.num_cores == 1
        assert result.utilization() > 0.5  # one core, no barrier waiting

    def test_no_hub_machinery(self, graph):
        result = runtime.run(
            "sequential", graph, algorithms.IncrementalPageRank(), HW
        )
        assert result.hub_index_entries == 0
        assert result.shortcut_applications == 0


class TestTransformabilityMatrix:
    """Which algorithms admit the dependency transformation (Table I)."""

    @pytest.mark.parametrize(
        "factory, expected",
        [
            (lambda: algorithms.IncrementalPageRank(), True),
            (lambda: algorithms.Adsorption(), True),
            (lambda: algorithms.SSSP(0), True),
            (lambda: algorithms.WCC(), True),
            (lambda: algorithms.SSWP(0), True),
            (lambda: algorithms.KatzCentrality(), True),
            (lambda: algorithms.BFS(0), True),
            (lambda: algorithms.KCore(3), False),
        ],
    )
    def test_supports_transformation(self, factory, expected):
        assert algorithms.supports_transformation(factory()) is expected

    def test_edge_linear_matches_edge_compute_everywhere(self, graph):
        """Property 2: the declared linear coefficients agree with
        EdgeCompute on every edge, for every transformable algorithm."""
        for factory in (
            lambda: algorithms.IncrementalPageRank(),
            lambda: algorithms.SSSP(0),
            lambda: algorithms.SSWP(0),
            lambda: algorithms.KatzCentrality(),
        ):
            alg = factory()
            for s, t, w in list(graph.edges())[:200]:
                func = alg.edge_linear(s, w, graph)
                for value in (0.0, 1.0, 7.5):
                    assert func(value) == pytest.approx(
                        alg.edge_compute(s, value, w, graph), rel=1e-12
                    )
