"""Tests for ExecutionResult accounting, metrics helpers, and reporting."""

import numpy as np
import pytest

from repro.metrics.report import format_table
from repro.metrics.utilization import utilization_breakdown
from repro.metrics.validation import max_state_error, states_match
from repro.runtime.stats import ExecutionResult, RoundLog


def make_result(**overrides):
    base = dict(
        system="test",
        algorithm="sssp",
        states=np.asarray([0.0, 1.0]),
        total_updates=100,
        edge_operations=500,
        rounds=3,
        cycles=1000.0,
        core_busy=[800.0, 600.0],
        compute_cycles=300.0,
        memory_cycles=900.0,
        overhead_cycles=200.0,
        state_memory_cycles=400.0,
        num_cores=2,
        converged=True,
    )
    base.update(overrides)
    return ExecutionResult(**base)


class TestExecutionResult:
    def test_busy_and_idle(self):
        r = make_result()
        assert r.busy_cycles == 1400.0
        assert r.idle_cycles == 600.0

    def test_utilization(self):
        r = make_result()
        assert r.utilization() == pytest.approx(0.7)

    def test_effective_utilization_formula(self):
        """r_e = u_s * U / u_d (Section II)."""
        r = make_result(total_updates=200)
        u_s = 50
        assert r.effective_utilization(u_s) == pytest.approx(
            (50 / 200) * r.utilization()
        )

    def test_effective_utilization_capped(self):
        # a system cannot be more than 100% useful
        r = make_result(total_updates=10)
        assert r.effective_utilization(1000) == pytest.approx(r.utilization())

    def test_state_processing_fraction(self):
        r = make_result()
        # (compute + state_mem) / busy = (300 + 400) / 1400
        assert r.state_processing_fraction == pytest.approx(0.5)
        assert r.state_processing_cycles == pytest.approx(500.0)
        assert r.other_cycles == pytest.approx(500.0)

    def test_speedup_and_normalization(self):
        fast = make_result(cycles=500.0)
        slow = make_result(cycles=2000.0)
        assert fast.speedup_over(slow) == 4.0
        small = make_result(total_updates=25)
        big = make_result(total_updates=100)
        assert small.updates_normalized_to(big) == 0.25

    def test_zero_update_edge_cases(self):
        r = make_result(total_updates=0)
        assert r.effective_utilization(10) == 0.0
        base = make_result(total_updates=0)
        assert make_result().updates_normalized_to(base) == 0.0


class TestUtilizationBreakdown:
    def test_useful_plus_useless_equals_total(self):
        r = make_result(total_updates=300)
        b = utilization_breakdown(r, sequential_updates=100)
        assert b.useful + b.useless == pytest.approx(b.total)
        assert b.useful_update_ratio == pytest.approx(b.useful / b.total)


class TestValidation:
    def test_matching_infinities_ignored(self):
        a = np.asarray([1.0, np.inf])
        b = np.asarray([1.0, np.inf])
        assert max_state_error(a, b) == 0.0

    def test_mismatched_infinity_is_infinite_error(self):
        a = np.asarray([1.0, np.inf])
        b = np.asarray([1.0, 5.0])
        assert max_state_error(a, b) == np.inf

    def test_states_match_tolerance(self):
        a = np.asarray([1.0, 2.0])
        b = np.asarray([1.0005, 2.0])
        assert states_match(a, b, tol=1e-3)
        assert not states_match(a, b, tol=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_state_error(np.zeros(2), np.zeros(3))


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert lines[0].startswith("name")

    def test_non_float_cells(self):
        text = format_table(["x"], [[42], ["s"]])
        assert "42" in text and "s" in text


class TestRoundLog:
    def test_fields(self):
        log = RoundLog(2, 50, 40, 1234.0)
        assert log.round_index == 2
        assert log.active_vertices == 50
