"""Tests for the DepGraph engine timeline model."""

import pytest

from repro.accel.depgraph.engine import (
    DepGraphEngine,
    ENGINE_MLP,
    EngineConfig,
    ISSUE_CYCLES,
)
from repro.graph import generators
from repro.graph.partition import by_edge_count
from repro.hardware import HardwareConfig, MemoryLayout, MemorySystem


def make_engine(buffer_capacity=4, stack_depth=10):
    graph = generators.chain(20, weighted=True)
    hw = HardwareConfig.scaled(num_cores=2)
    memsys = MemorySystem(hw)
    layout = MemoryLayout(graph, 2)
    parts = by_edge_count(graph, 2)
    config = EngineConfig(
        parts[0], stack_depth=stack_depth, buffer_capacity=buffer_capacity
    )
    return DepGraphEngine(0, graph, memsys, layout, lambda v: False, config)


class TestEngineTimeline:
    def test_fetch_advances_time_pipelined(self):
        engine = make_engine()
        engine._charge_fetch("offset", 0)
        # pipelined: issue + latency / MLP, far less than the raw latency
        raw = engine.memsys.access(1, engine.layout.offsets.addr(64))
        assert engine.time < raw + ISSUE_CYCLES
        assert engine.time >= ISSUE_CYCLES

    def test_state_fetch_covers_both_arrays(self):
        engine = make_engine()
        engine._charge_fetch("state", 3)
        # states AND deltas lines installed -> core hits privately
        state_line = engine.layout.states.addr(3)
        delta_line = engine.layout.deltas.addr(3)
        assert engine.memsys.l1[0].probe(state_line >> 6)
        assert engine.memsys.l1[0].probe(delta_line >> 6)
        assert engine.ops == 2

    def test_sync_to_forward_only(self):
        engine = make_engine()
        engine.sync_to(500.0)
        assert engine.time == 500.0
        engine.sync_to(100.0)
        assert engine.time == 500.0

    def test_fifo_window_throttles_engine(self):
        engine = make_engine(buffer_capacity=2)
        engine._charge_fetch("offset", 0)
        engine._charge_fetch("offset", 8)
        # the core is far behind: consumes at t=10000, 20000
        engine.note_consumed(10000.0)
        engine.note_consumed(20000.0)
        engine._charge_fetch("offset", 16)
        # third fetch had to wait for the first consumption
        assert engine.time >= 10000.0
        assert engine.stall_cycles > 0

    def test_configure_charges_registers(self):
        engine = make_engine()
        before = engine.time
        parts = by_edge_count(engine.graph, 2)
        engine.configure(EngineConfig(parts[1], stack_depth=5))
        assert engine.time > before
        assert engine.hdtl.stack_depth == 5

    def test_hub_probe_charges_per_entry(self):
        engine = make_engine()
        t0 = engine.time
        engine.charge_hub_probe(3, entry_count=0)
        t1 = engine.time
        engine.charge_hub_probe(3, entry_count=4)
        t2 = engine.time
        assert t1 > t0  # hash probe alone costs something
        assert t2 - t1 > 0

    def test_unknown_fetch_kind(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine._charge_fetch("mystery", 0)

    def test_mlp_constant_sane(self):
        assert 1 <= ENGINE_MLP <= 16
