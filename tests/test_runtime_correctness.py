"""Integration tests: every runtime converges to the reference fixpoint.

This is the contract behind Theorem 1 (the dependency transformation yields
the same results) and behind the whole simulation: whatever scheduling,
staleness, prefetching, or shortcut machinery a system uses, the final
vertex states must match the reference solver.
"""

import math

import numpy as np
import pytest

from repro import algorithms, runtime
from repro.algorithms import reference
from repro.graph import generators
from repro.hardware import HardwareConfig

CORES4 = HardwareConfig.scaled(num_cores=4)

ALL_SYSTEMS = list(runtime.SYSTEM_NAMES)


def small_graph(seed=3, n=120, m=700):
    g = generators.power_law(n, m, alpha=2.0, seed=seed, weighted=True)
    return generators.ensure_reachable(g, root=0, seed=seed)


def assert_states_close(measured, expected, tol):
    measured = np.asarray(measured)
    expected = np.asarray(expected)
    both_inf = np.isinf(measured) & np.isinf(expected)
    with np.errstate(invalid="ignore"):
        diff = np.where(both_inf, 0.0, measured - expected)
    assert not np.isinf(diff).any(), "infinite mismatch"
    assert not np.isnan(diff).any(), "inf/finite mismatch"
    assert np.max(np.abs(diff)) <= tol, f"max err {np.max(np.abs(diff)):.2e}"


@pytest.fixture(scope="module")
def graph():
    return small_graph()


@pytest.mark.parametrize("system", ALL_SYSTEMS)
class TestEverySystem:
    def test_sssp_matches_dijkstra(self, system, graph):
        res = runtime.run(system, graph, algorithms.SSSP(0), CORES4)
        assert res.converged
        assert_states_close(res.states, reference.sssp(graph, 0), 1e-9)

    def test_pagerank_matches_power_iteration(self, system, graph):
        res = runtime.run(system, graph, algorithms.IncrementalPageRank(), CORES4)
        assert res.converged
        # threshold-based async execution leaves at most ~n*epsilon residue
        assert_states_close(res.states, reference.pagerank(graph), 5e-3)

    def test_wcc_matches_components(self, system, graph):
        res = runtime.run(system, graph, algorithms.WCC(), CORES4)
        assert res.converged
        assert_states_close(res.states, reference.wcc(graph), 0.0)

    def test_adsorption_matches_reference(self, system, graph):
        res = runtime.run(system, graph, algorithms.Adsorption(), CORES4)
        assert res.converged
        assert_states_close(res.states, reference.adsorption(graph), 5e-3)


@pytest.mark.parametrize("system", ["ligra-o", "depgraph-h", "minnow"])
class TestExtensionAlgorithms:
    def test_sswp(self, system, graph):
        res = runtime.run(system, graph, algorithms.SSWP(0), CORES4)
        assert_states_close(res.states, reference.sswp(graph, 0), 1e-9)

    def test_bfs(self, system, graph):
        res = runtime.run(system, graph, algorithms.BFS(0), CORES4)
        assert_states_close(res.states, reference.bfs(graph, 0), 0.0)

    def test_katz(self, system, graph):
        # attenuation must stay below 1/lambda_max(A) for Katz to converge;
        # the power-law fixture has large-degree hubs, so keep it small
        attenuation = 0.01
        res = runtime.run(
            system, graph, algorithms.KatzCentrality(attenuation), CORES4
        )
        assert_states_close(res.states, reference.katz(graph, attenuation), 5e-3)

    def test_kcore(self, system, graph):
        k = 4
        res = runtime.run(system, graph, algorithms.KCore(k), CORES4)
        expected = reference.kcore(graph, k)
        measured = np.asarray(res.states) >= k
        assert (measured == expected).all()


class TestDepGraphVariants:
    """DepGraph-specific configurations preserve correctness."""

    def test_learned_ddmu_matches_analytic(self, graph):
        a = runtime.run(
            "depgraph-h", graph, algorithms.SSSP(0), CORES4, ddmu_mode="analytic"
        )
        b = runtime.run(
            "depgraph-h", graph, algorithms.SSSP(0), CORES4, ddmu_mode="learned"
        )
        assert_states_close(a.states, b.states, 1e-9)

    def test_stack_depth_one_still_correct(self, graph):
        res = runtime.run(
            "depgraph-h", graph, algorithms.SSSP(0), CORES4, stack_depth=1
        )
        assert_states_close(res.states, reference.sssp(graph, 0), 1e-9)

    @pytest.mark.parametrize("lam", [0.0, 0.01, 0.2])
    def test_lambda_sweep_correct(self, graph, lam):
        res = runtime.run(
            "depgraph-h", graph, algorithms.IncrementalPageRank(), CORES4, lam=lam
        )
        assert_states_close(res.states, reference.pagerank(graph), 5e-3)

    def test_kcore_disables_hub_index(self, graph):
        """Non-transformable algorithms run with the transformation off
        (Section III-A3's escape hatch)."""
        res = runtime.run("depgraph-h", graph, algorithms.KCore(3), CORES4)
        assert res.hub_index_entries == 0
        assert res.shortcut_applications == 0

    def test_single_core_depgraph(self, graph):
        hw1 = HardwareConfig.scaled(num_cores=1)
        res = runtime.run("depgraph-h", graph, algorithms.SSSP(0), hw1)
        assert_states_close(res.states, reference.sssp(graph, 0), 1e-9)

    def test_many_cores_correct(self, graph):
        hw64 = HardwareConfig.scaled(num_cores=64)
        res = runtime.run("depgraph-h", graph, algorithms.SSSP(0), hw64)
        assert_states_close(res.states, reference.sssp(graph, 0), 1e-9)


class TestDeterminism:
    """The event-interleaved executor is fully deterministic."""

    @pytest.mark.parametrize("system", ["ligra-o", "depgraph-h", "minnow"])
    def test_repeat_runs_identical(self, system, graph):
        a = runtime.run(system, graph, algorithms.SSSP(0), CORES4)
        b = runtime.run(system, graph, algorithms.SSSP(0), CORES4)
        assert a.cycles == b.cycles
        assert a.total_updates == b.total_updates
        assert np.array_equal(a.states, b.states)


class TestTopologyEdgeCases:
    @pytest.mark.parametrize("system", ["ligra", "ligra-o", "depgraph-h", "minnow"])
    def test_single_chain(self, system):
        g = generators.chain(30, weighted=True)
        res = runtime.run(system, g, algorithms.SSSP(0), CORES4)
        assert_states_close(res.states, reference.sssp(g, 0), 1e-9)

    @pytest.mark.parametrize("system", ["ligra-o", "depgraph-h"])
    def test_star(self, system):
        g = generators.star(50).with_weights(np.ones(49))
        res = runtime.run(system, g, algorithms.SSSP(0), CORES4)
        assert_states_close(res.states, reference.sssp(g, 0), 1e-9)

    @pytest.mark.parametrize("system", ["ligra-o", "depgraph-h"])
    def test_disconnected_graph(self, system):
        g = generators.power_law(60, 100, seed=9, weighted=True)
        res = runtime.run(system, g, algorithms.SSSP(0), CORES4)
        assert_states_close(res.states, reference.sssp(g, 0), 1e-9)

    @pytest.mark.parametrize("system", ["ligra-o", "depgraph-h"])
    def test_mesh_graph(self, system):
        """The paper notes mesh-like graphs still benefit from DepGraph-H-w;
        at minimum they must stay correct."""
        g = generators.grid_mesh(8, 8, weighted=True)
        res = runtime.run(system, g, algorithms.SSSP(0), CORES4)
        assert_states_close(res.states, reference.sssp(g, 0), 1e-9)

    def test_empty_frontier_graph(self):
        # no edges, nothing active for SSSP beyond the source
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(10, [], weights=None)
        gw = g.with_weights(np.zeros(0))
        res = runtime.run("depgraph-h", gw, algorithms.SSSP(0), CORES4)
        assert res.states[0] == 0.0
        assert all(math.isinf(s) for s in res.states[1:])


class TestUnknownSystem:
    def test_unknown_name_raises(self, graph):
        with pytest.raises(KeyError):
            runtime.run("spark", graph, algorithms.SSSP(0), CORES4)
