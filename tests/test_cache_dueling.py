"""Deeper cache-policy tests: DRRIP set-dueling and RRIP aging."""

from repro.hardware.cache import Cache
from repro.hardware.config import CacheConfig


def rrip_cache(ways=4, sets=64, policy="drrip"):
    return Cache(CacheConfig(64 * ways * sets, ways, 4, policy), line_bytes=64)


class TestSetDueling:
    def test_leader_set_misses_move_selector(self):
        c = rrip_cache()
        start = c._psel
        # misses in the SRRIP leader set (index 0 mod 64) push toward BRRIP
        c.note_duel_outcome(0, hit=False)
        c.note_duel_outcome(0, hit=False)
        assert c._psel < start

    def test_brip_leader_misses_push_back(self):
        c = rrip_cache()
        c.note_duel_outcome(32, hit=False)
        assert c._psel > 512 - 1

    def test_selector_saturates(self):
        c = rrip_cache()
        for _ in range(5000):
            c.note_duel_outcome(0, hit=False)
        assert c._psel == 0
        for _ in range(5000):
            c.note_duel_outcome(32, hit=False)
        assert c._psel == 1023

    def test_hits_do_not_move_selector(self):
        c = rrip_cache()
        start = c._psel
        c.note_duel_outcome(0, hit=True)
        c.note_duel_outcome(32, hit=True)
        assert c._psel == start


class TestRRIPAging:
    def test_promotion_on_hit(self):
        c = rrip_cache(ways=2, sets=1)
        c.access(0)
        c.access(0)  # hit: rrpv -> 0
        cset = c._sets[0]
        assert cset[0] == 0

    def test_victim_is_distant_line(self):
        c = rrip_cache(ways=2, sets=1)
        c.access(0)
        c.access(0)  # line 0 promoted to rrpv 0
        c.access(1)  # line 1 inserted distant
        c.access(2)  # must evict line 1 (higher rrpv), not line 0
        assert c.probe(0)
        assert not c.probe(1)

    def test_writebacks_counted(self):
        c = rrip_cache(ways=1, sets=1)
        c.access(0)
        c.access(1)
        assert c.writebacks == 1


class TestGraspHotAging:
    def test_hot_lines_survive_aging(self):
        c = rrip_cache(ways=2, sets=1, policy="grasp")
        c.add_hot_range(0, 1)
        c.access(0)  # hot line resident
        for line in range(1, 12):
            c.access(line)  # scan pressure
        assert c.probe(0)
