"""Tests for hub selection, the hub index, and the DDMU."""

import math

import pytest

from repro.accel.depgraph.ddmu import DDMU
from repro.accel.depgraph.hub_index import EntryFlag, HubIndex
from repro.accel.depgraph.hubs import HubSets, degree_threshold, select_hubs
from repro.algorithms import SSSP, IncrementalPageRank, WCC
from repro.algorithms.extensions import KCore, SSWP
from repro.graph import generators
from repro.graph.csr import CSRGraph


def chain_graph(length, weights=None):
    edges = [(i, i + 1) for i in range(length)]
    w = weights if weights is not None else [1.0] * length
    return CSRGraph.from_edges(length + 1, edges, weights=w)


class TestHubSelection:
    def test_threshold_from_star(self):
        g = generators.star(100)
        t = degree_threshold(g, lam=0.01, beta=1.0)
        assert t == 99  # only the center has degree

    def test_select_hubs_returns_top_degree(self):
        g = generators.power_law(1000, 8000, seed=1)
        hubs = select_hubs(g, lam=0.01, beta=1.0)
        degrees = g.out_degrees()
        cutoff = min(degrees[v] for v in hubs)
        non_hubs_above = [
            v for v in range(1000) if v not in hubs and degrees[v] >= cutoff
        ]
        assert not non_hubs_above  # nothing outside beats the cutoff

    def test_sampling_close_to_exact(self):
        g = generators.power_law(5000, 40000, seed=2)
        exact = degree_threshold(g, lam=0.01, beta=1.0)
        sampled = degree_threshold(g, lam=0.01, beta=0.2, seed=3)
        assert sampled == pytest.approx(exact, rel=1.0)  # same order

    def test_explicit_threshold(self):
        g = generators.power_law(500, 4000, seed=4)
        hubs = select_hubs(g, threshold=10)
        assert all(g.out_degree(v) >= 10 for v in hubs)

    def test_invalid_lambda(self):
        g = generators.star(10)
        with pytest.raises(ValueError):
            degree_threshold(g, lam=2.0)

    def test_invalid_beta(self):
        g = generators.star(10)
        with pytest.raises(ValueError):
            degree_threshold(g, beta=0.0)

    def test_hubsets_promotion(self):
        hs = HubSets({1, 2})
        assert 1 in hs and 3 not in hs
        hs.promote_core_vertex(3)
        assert 3 in hs
        hs.promote_core_vertex(1)  # hubs are not duplicated
        assert hs.size == 3


class TestHubIndex:
    def test_insert_and_lookup(self):
        idx = HubIndex()
        from repro.algorithms.linear import DepFunc

        idx.insert(0, 5, 1, (0, 1, 5), DepFunc(1.0, 2.0))
        entries = idx.lookup_head(0)
        assert len(entries) == 1
        assert entries[0].func(3.0) == 5.0

    def test_duplicate_insert_returns_existing(self):
        idx = HubIndex()
        a = idx.insert(0, 5, 1, (0, 1, 5))
        b = idx.insert(0, 5, 1, (0, 1, 5))
        assert a is b
        assert len(idx) == 1

    def test_multiple_paths_same_pair(self):
        """Direct dependencies between the same pair along different
        core-paths are stored separately, keyed by path id."""
        idx = HubIndex()
        idx.insert(0, 5, 1, (0, 1, 5))
        idx.insert(0, 5, 2, (0, 2, 5))
        assert len(idx) == 2
        assert idx.head_entry_count(0) == 2

    def test_learning_protocol_n_i_a(self):
        idx = HubIndex()
        entry = idx.insert(0, 5, 1, (0, 1, 5))
        assert entry.flag is EntryFlag.NEW
        idx.observe(entry, 1.0, 3.0)  # f(s)=s+2 sampled at s=1
        assert entry.flag is EntryFlag.INCOMPLETE
        idx.observe(entry, 4.0, 6.0)
        assert entry.flag is EntryFlag.AVAILABLE
        assert entry.func(10.0) == pytest.approx(12.0)

    def test_learning_degenerate_observation_retries(self):
        idx = HubIndex()
        entry = idx.insert(0, 5, 1, (0, 1, 5))
        idx.observe(entry, 1.0, 3.0)
        idx.observe(entry, 1.0, 3.0)  # head unchanged: cannot solve
        assert entry.flag is EntryFlag.INCOMPLETE
        idx.observe(entry, 2.0, 4.0)
        assert entry.flag is EntryFlag.AVAILABLE

    def test_unusable_entries_not_returned(self):
        idx = HubIndex()
        idx.insert(0, 5, 1, (0, 1, 5))  # stays NEW
        assert idx.lookup_head(0) == []

    def test_memory_accounting(self):
        idx = HubIndex()
        assert idx.memory_bytes >= 0
        idx.insert(0, 5, 1, (0, 1, 5))
        assert idx.memory_bytes >= HubIndex.ENTRY_BYTES


class TestDDMU:
    def test_analytic_sssp_composition(self):
        g = chain_graph(4, weights=[1.0, 2.0, 3.0, 4.0])
        ddmu = DDMU(g, SSSP(0), HubIndex(), mode="analytic")
        entry = ddmu.core_path_identified((0, 1, 2, 3, 4))
        assert entry.usable
        # SSSP shortcut: mu=1, xi=sum of weights=10
        assert entry.func(5.0) == pytest.approx(15.0)

    def test_analytic_pagerank_composition(self):
        g = chain_graph(3)
        alg = IncrementalPageRank(damping=0.5)
        ddmu = DDMU(g, alg, HubIndex(), mode="analytic")
        entry = ddmu.core_path_identified((0, 1, 2, 3))
        # each hop multiplies by d/deg = 0.5
        assert entry.func(8.0) == pytest.approx(1.0)

    def test_analytic_wcc_identity(self):
        g = chain_graph(2)
        ddmu = DDMU(g, WCC(), HubIndex(), mode="analytic")
        entry = ddmu.core_path_identified((0, 1, 2))
        assert entry.func(7.0) == 7.0

    def test_analytic_sswp_cap(self):
        g = chain_graph(2, weights=[5.0, 3.0])
        ddmu = DDMU(g, SSWP(0), HubIndex(), mode="analytic")
        entry = ddmu.core_path_identified((0, 1, 2))
        assert entry.func(10.0) == 3.0  # bottleneck of the path
        assert entry.func(2.0) == 2.0

    def test_learned_mode_starts_unusable(self):
        g = chain_graph(2)
        ddmu = DDMU(g, SSSP(0), HubIndex(), mode="learned")
        entry = ddmu.core_path_identified((0, 1, 2))
        assert not entry.usable
        ddmu.path_processed(entry, 0.0, 2.0)
        ddmu.path_processed(entry, 1.0, 3.0)
        assert entry.usable
        assert entry.func(5.0) == pytest.approx(7.0)

    def test_disabled_for_nontransformable(self):
        g = chain_graph(2)
        ddmu = DDMU(g, KCore(2), HubIndex(), mode="analytic")
        assert not ddmu.enabled
        assert ddmu.core_path_identified((0, 1, 2)) is None
        assert ddmu.shortcuts_for(0) == []

    def test_reset_edge_only_for_sum(self):
        g = chain_graph(2)
        assert DDMU(g, IncrementalPageRank(), HubIndex()).needs_reset_edge
        assert not DDMU(g, SSSP(0), HubIndex()).needs_reset_edge
        assert not DDMU(g, WCC(), HubIndex()).needs_reset_edge

    def test_missing_edge_rejected(self):
        g = chain_graph(3)
        ddmu = DDMU(g, SSSP(0), HubIndex(), mode="analytic")
        with pytest.raises(ValueError):
            ddmu.core_path_identified((0, 2))  # no direct 0->2 edge

    def test_invalid_mode(self):
        g = chain_graph(2)
        with pytest.raises(ValueError):
            DDMU(g, SSSP(0), HubIndex(), mode="psychic")
