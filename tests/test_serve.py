"""Tests for the serving subsystem (repro.serve).

Covers the version store's snapshot isolation, the warm-start soundness
rules (sum-type residual seeding vs the min/max monotone-only regime and
its cold fallbacks), batching/caching behaviour (cache hits answered with
zero engine runs), admission control and deadline shedding, the
determinism of ``obs.serve.*`` counters, and the ``serve-bench`` CLI
subcommand with its artifacts.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.hardware import HardwareConfig
from repro.runtime.scheduling import SchedulingPolicy, resolve_auto_policy
from repro.serve import (
    Batcher,
    GraphDelta,
    GraphStore,
    GraphService,
    QueryEngine,
    QueryKey,
    ResultCache,
    ServeConfig,
    canonical_params,
)
from repro.serve.warmstart import (
    FALLBACK_NO_BASELINE,
    FALLBACK_REANCHOR,
    FALLBACK_REMOVAL,
    FALLBACK_UNSUPPORTED,
    FALLBACK_UNTRANSFORMABLE,
)

#: warm-vs-cold agreement bound for sum-type accumulators: 2x the
#: cross-schedule spread, because warm and cold runs truncate their
#: epsilon-fixpoints independently (see docs/SERVING.md)
SUM_TOL = 2e-3


def small_graph():
    edges = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 1)]
    return CSRGraph.from_edges(4, edges, weights=[1.0] * len(edges))


def bench_graph():
    return datasets.load("AZ", scale=0.1)


def make_engine(store, **kw):
    kw.setdefault("hardware", HardwareConfig.scaled(num_cores=4))
    return QueryEngine(store, **kw)


class TestGraphDelta:
    def test_normalises_and_describes(self):
        delta = GraphDelta(
            add_edges=[(0, 1)], remove_edges=[(2, 3)],
            reweight=[(1, 2, 5.0)], add_vertices=2,
        )
        assert delta.add_edges == ((0, 1),)
        assert delta.touched_sources() == {0, 1, 2}
        assert delta.changed_pairs() == {(0, 1), (1, 2)}
        assert delta.num_changes == 5
        assert delta.has_removals
        assert delta.describe() == "+2v,+1e,-1e,~1w"
        assert GraphDelta().is_empty

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ValueError):
            GraphDelta(add_edges=[(0, 1), (1, 2)], add_weights=(1.0,))

    def test_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            GraphDelta(add_vertices=-1)


class TestGraphStore:
    def test_append_only_chain(self):
        store = GraphStore(small_graph())
        assert store.latest_version == 0
        v1 = store.apply(GraphDelta(add_edges=[(3, 0)], add_weights=(1.0,)))
        v2 = store.apply(GraphDelta(remove_edges=[(0, 1)]))
        assert (v1.version, v2.version) == (1, 2)
        assert v2.parent == 1
        assert len(store) == 3
        assert [d.describe() for d in store.chain(0, 2)] == ["+1e", "-1e"]

    def test_snapshot_isolation(self):
        store = GraphStore(small_graph())
        before = store.get(0)
        edges0 = before.graph.num_edges
        store.apply(GraphDelta(add_edges=[(3, 0)], add_weights=(1.0,)))
        # the held snapshot is untouched by the update
        assert store.get(0).graph.num_edges == edges0
        assert store.get(0) is before
        assert store.latest.graph.num_edges == edges0 + 1

    def test_unknown_version_rejected(self):
        store = GraphStore(small_graph())
        with pytest.raises(KeyError):
            store.get(5)
        with pytest.raises(ValueError):
            store.chain(2, 1)

    def test_save_load_round_trip(self, tmp_path):
        store = GraphStore(small_graph())
        store.apply(
            GraphDelta(
                add_edges=[(3, 0)], add_weights=(2.5,), add_vertices=1
            )
        )
        store.apply(GraphDelta(remove_edges=[(0, 1)], reweight=[(1, 2, 9.0)]))
        store.save(tmp_path / "store")
        restored = GraphStore.load(tmp_path / "store")
        assert len(restored) == len(store)
        assert restored.latest_version == store.latest_version
        for v in range(len(store)):
            original, loaded = store.get(v), restored.get(v)
            assert loaded.parent == original.parent
            assert np.array_equal(loaded.graph.offsets, original.graph.offsets)
            assert np.array_equal(loaded.graph.targets, original.graph.targets)
            assert np.array_equal(loaded.graph.weights, original.graph.weights)
        # the restored chain serves warm-start planning like the original
        assert [d.describe() for d in restored.chain(0, 2)] == [
            d.describe() for d in store.chain(0, 2)
        ]

    def test_save_load_base_only_and_bad_format(self, tmp_path):
        store = GraphStore(small_graph())
        store.save(tmp_path / "s")
        restored = GraphStore.load(tmp_path / "s")
        assert len(restored) == 1
        assert restored.latest.graph.num_edges == small_graph().num_edges
        manifest = tmp_path / "s" / "manifest.json"
        manifest.write_text(json.dumps({"format": 99, "deltas": []}))
        with pytest.raises(ValueError):
            GraphStore.load(tmp_path / "s")

    def test_save_is_resumable(self, tmp_path):
        # save, restart, keep applying updates, save again over the same dir
        store = GraphStore(small_graph())
        store.apply(GraphDelta(add_edges=[(3, 0)], add_weights=(1.0,)))
        store.save(tmp_path / "s")
        resumed = GraphStore.load(tmp_path / "s")
        resumed.apply(GraphDelta(remove_edges=[(3, 0)]))
        resumed.save(tmp_path / "s")
        final = GraphStore.load(tmp_path / "s")
        assert len(final) == 3
        assert final.latest.graph.num_edges == small_graph().num_edges


class TestBatcherAndCache:
    def key(self, algo, version=0):
        return QueryKey(algo, canonical_params(None), version)

    def test_batcher_coalesces_identical_keys_fifo(self):
        batcher = Batcher()
        a, b = self.key("pagerank"), self.key("sssp")
        batcher.add(a, "r0")
        batcher.add(b, "r1")
        assert batcher.add(a, "r2") == 2
        assert len(batcher) == 3
        key, group = batcher.next_batch()
        assert key == a and group == ["r0", "r2"]
        key, group = batcher.next_batch()
        assert key == b and group == ["r1"]
        assert batcher.next_batch() is None

    def test_cache_lru_eviction_and_counts(self):
        cache = ResultCache(capacity=2)
        k = [self.key("a"), self.key("b"), self.key("c")]
        cache.put(k[0], "A")
        cache.put(k[1], "B")
        assert cache.get(k[0]) == "A"  # refresh: a is now most-recent
        cache.put(k[2], "C")  # evicts b
        assert cache.get(k[1]) is None
        assert cache.get(k[0]) == "A"
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_cache_invalidate_before_version(self):
        cache = ResultCache(capacity=8)
        old, new = self.key("a", version=1), self.key("a", version=3)
        cache.put(old, "OLD")
        cache.put(new, "NEW")
        cache.invalidate_before(3)
        assert old not in cache and new in cache

    def test_canonical_params_order_insensitive(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params(
            {"b": 2, "a": 1}
        )


class TestWarmStart:
    """Warm-start soundness per accumulator kind (the acceptance gates)."""

    def test_sum_type_warm_fewer_updates_states_close(self):
        store = GraphStore(bench_graph())
        engine = make_engine(store)
        engine.execute("pagerank")  # establish the baseline at v0
        store.apply(GraphDelta(add_edges=[(5, 9), (9, 3)], add_weights=(1.0, 1.0)))
        warm = engine.execute("pagerank")
        cold = make_engine(GraphStore(store.latest.graph)).execute("pagerank")
        assert warm.warm and warm.seeded > 0
        assert warm.updates < cold.updates
        diff = np.max(np.abs(np.asarray(warm.result.states) - np.asarray(cold.result.states)))
        assert diff < SUM_TOL

    def test_sum_type_warm_after_removal_via_signed_residuals(self):
        graph = bench_graph()
        store = GraphStore(graph)
        engine = make_engine(store)
        engine.execute("pagerank")
        target = int(graph.targets[0])
        store.apply(GraphDelta(remove_edges=[(0, target)]))
        warm = engine.execute("pagerank")
        cold = make_engine(GraphStore(store.latest.graph)).execute("pagerank")
        assert warm.warm  # removals are fine for sum: retract + reassert
        diff = np.max(np.abs(np.asarray(warm.result.states) - np.asarray(cold.result.states)))
        assert diff < SUM_TOL

    def test_min_type_warm_bit_identical_on_improving_delta(self):
        store = GraphStore(bench_graph())
        engine = make_engine(store)
        engine.execute("sssp")
        store.apply(GraphDelta(add_edges=[(2, 40)], add_weights=(0.5,)))
        warm = engine.execute("sssp")
        cold = make_engine(GraphStore(store.latest.graph)).execute("sssp")
        assert warm.warm
        assert warm.updates < cold.updates
        assert np.array_equal(
            np.asarray(warm.result.states), np.asarray(cold.result.states)
        )

    def test_min_type_falls_back_cold_on_removal(self):
        graph = bench_graph()
        store = GraphStore(graph)
        engine = make_engine(store)
        engine.execute("sssp")
        target = int(graph.targets[0])
        store.apply(GraphDelta(remove_edges=[(0, target)]))
        run = engine.execute("sssp")
        assert not run.warm
        assert run.fallback_reason == FALLBACK_REMOVAL
        cold = make_engine(GraphStore(store.latest.graph)).execute("sssp")
        assert np.array_equal(
            np.asarray(run.result.states), np.asarray(cold.result.states)
        )

    def test_untransformable_algorithm_falls_back(self):
        store = GraphStore(bench_graph())
        engine = make_engine(store)
        engine.execute("kcore")
        store.apply(GraphDelta(add_edges=[(1, 7)], add_weights=(1.0,)))
        run = engine.execute("kcore")
        assert not run.warm
        assert run.fallback_reason in (
            FALLBACK_UNSUPPORTED,
            FALLBACK_UNTRANSFORMABLE,
        )

    def test_first_run_reports_no_baseline(self):
        engine = make_engine(GraphStore(bench_graph()))
        run = engine.execute("pagerank")
        assert not run.warm
        assert run.fallback_reason == FALLBACK_NO_BASELINE
        assert engine.baseline_version("pagerank") == 0

    def test_sum_type_reanchors_after_streak(self):
        # pagerank drifts along an unbroken warm chain (each warm run is
        # an epsilon-fixpoint seeded from the previous warm result), so
        # after `sum_reanchor_every` consecutive warm runs the lineage
        # must re-anchor cold, then resume warm-starting from the fresh
        # baseline
        store = GraphStore(bench_graph())
        engine = make_engine(store, sum_reanchor_every=3)
        engine.execute("pagerank")  # cold: no baseline
        outcomes = []
        for step in range(5):
            store.apply(
                GraphDelta(add_edges=[(step, step + 50)], add_weights=(1.0,))
            )
            outcomes.append(engine.execute("pagerank"))
        assert [run.warm for run in outcomes] == [True, True, True, False, True]
        assert outcomes[3].fallback_reason == FALLBACK_REANCHOR

    def test_min_type_never_reanchors(self):
        store = GraphStore(bench_graph())
        engine = make_engine(store, sum_reanchor_every=2)
        engine.execute("sssp")
        for step in range(4):
            store.apply(
                GraphDelta(add_edges=[(step, step + 50)], add_weights=(0.5,))
            )
            run = engine.execute("sssp")
            assert run.warm, f"min-type run {step} should stay warm"

    def test_force_cold_and_drop_baselines(self):
        store = GraphStore(bench_graph())
        engine = make_engine(store)
        engine.execute("pagerank")
        store.apply(GraphDelta(add_edges=[(5, 9)], add_weights=(1.0,)))
        assert engine.execute("pagerank", force_cold=True).warm is False
        engine.drop_baselines()
        assert engine.baseline_version("pagerank") is None


def make_service(**overrides):
    config = ServeConfig(
        cores=4,
        queue_limit=overrides.pop("queue_limit", 8),
        cache_capacity=overrides.pop("cache_capacity", 16),
        **overrides,
    )
    return GraphService(bench_graph(), config)


class TestGraphService:
    def test_cache_hit_answers_with_zero_engine_runs(self):
        service = make_service()
        service.submit("pagerank")
        service.drain()
        runs_before = service.engine.runs
        service.submit("pagerank")
        (response,) = service.drain()
        assert response.ok and response.cache_hit
        assert service.engine.runs == runs_before  # no engine work at all
        snapshot = service.metrics_snapshot()
        assert snapshot["obs.serve.cache_hits"] == 1.0
        assert snapshot["obs.serve.engine_runs"] == 1.0

    def test_duplicate_submissions_coalesce_into_one_run(self):
        service = make_service()
        for _ in range(3):
            service.submit("sssp")
        responses = service.drain()
        assert len(responses) == 3 and all(r.ok for r in responses)
        assert service.engine.runs == 1

    def test_queue_full_sheds_newest_deterministically(self):
        service = make_service(queue_limit=2)
        r1 = service.submit("pagerank")
        r2 = service.submit("sssp")
        shed = service.submit("wcc")
        assert isinstance(r1, int) and isinstance(r2, int)
        assert not isinstance(shed, int) and shed.status == "shed-queue"
        assert service.metrics_snapshot()["obs.serve.shed_queue"] == 1.0

    def test_deadline_expired_at_dispatch_is_shed(self):
        service = make_service()
        service.submit("pagerank")  # first group: advances the clock
        service.submit("sssp", deadline_cycles=1.0)
        responses = service.drain()
        by_status = {r.status for r in responses}
        assert by_status == {"ok", "shed-deadline"}
        assert service.metrics_snapshot()["obs.serve.shed_deadline"] == 1.0

    def test_version_resolved_at_admission(self):
        service = make_service()
        service.submit("pagerank")  # admitted against v0
        service.apply_update(GraphDelta(add_edges=[(5, 9)], add_weights=(1.0,)))
        service.submit("pagerank")  # admitted against v1
        responses = service.drain()
        versions = sorted(r.key.version for r in responses)
        assert versions == [0, 1]
        assert service.engine.runs == 2  # different snapshots, no coalescing

    def test_counters_bit_identical_across_repeat_runs(self):
        def run_once():
            service = make_service()
            service.submit("pagerank")
            service.submit("sssp")
            service.drain()
            service.apply_update(
                GraphDelta(add_edges=[(5, 9)], add_weights=(1.0,))
            )
            service.submit("pagerank")
            service.submit("pagerank")
            service.drain()
            return service.metrics_snapshot()

        assert run_once() == run_once()

    def test_counter_family_zero_seeded(self):
        snapshot = make_service().metrics_snapshot()
        for name in ("cache_hits", "warm_runs", "shed_queue", "engine_runs"):
            assert snapshot[f"obs.serve.{name}"] == 0.0


class TestAutoStealPolicy:
    def test_minnow_dense_keeps_random(self):
        dense = datasets.load("GL", scale=0.05)
        assert resolve_auto_policy("minnow", dense) == "random"

    def test_minnow_sparse_gets_partition(self):
        sparse = datasets.load("AZ", scale=0.05)
        assert resolve_auto_policy("minnow", sparse) == "partition"

    def test_other_systems_get_partition_even_when_dense(self):
        dense = datasets.load("GL", scale=0.05)
        for system in ("depgraph-h", "ligra-o", "hats"):
            assert resolve_auto_policy(system, dense) == "partition"

    def test_policy_resolved_pins_auto(self):
        policy = SchedulingPolicy(steal_policy="auto")
        with pytest.raises(RuntimeError):
            policy.partition_aware
        resolved = policy.resolved("depgraph-h", datasets.load("AZ", scale=0.05))
        assert resolved.steal_policy == "partition"
        assert resolved.partition_aware

    def test_concrete_policy_passes_through(self):
        policy = SchedulingPolicy(steal_policy="random")
        assert policy.resolved("minnow", None) is policy


class TestServeBenchCLI:
    def test_serve_bench_writes_parsable_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "serve-bench",
                "--dataset", "AZ",
                "--scale", "0.1",
                "--slots", "8",
                "--cores", "4",
                "--seed", "0",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve_bench" in out
        table = (tmp_path / "serve_bench.txt").read_text()
        assert "cache_hits" in table
        payload = json.loads(
            (tmp_path / "serve_bench.metrics.json").read_text()
        )
        counters = payload["metrics"]
        assert counters["serve.cache_hits"] > 0
        assert counters["serve.engine_runs"] > 0
