"""Property tests for the locality-aware reordering layer.

Covers the permutation machinery (every ordering is a validated
bijection whose inverse round-trips arrays and ids), the end-to-end
equivalence guarantee (a reordered run reproduces the identity run's
states under each accumulator kind's comparison rule), the
partition ordering's block invariants, original-id reporting of hub ids
and partition maps, and warm-start verification under a non-identity
ordering in the serving layer.
"""

import numpy as np
import pytest

from repro import algorithms, runtime
from repro.graph import datasets
from repro.graph.partition import by_edge_count
from repro.graph.reorder import (
    DEFAULT_HUB_FRACTION,
    ORDERING_NAMES,
    VertexOrdering,
    hub_order,
    make_ordering,
    partition_order,
)
from repro.hardware import HardwareConfig
from repro.serve.bench import BenchConfig, run_bench

SCALE = 0.1
CORES = 8

#: sum-type (pagerank) agreement bound vs the identity run — the
#: documented cross-schedule tolerance (one truncation point, two
#: execution orders)
SUM_TOLERANCE = 1e-3


@pytest.fixture(scope="module")
def graph():
    return datasets.load("GL", scale=SCALE)


@pytest.fixture(scope="module")
def hardware():
    return HardwareConfig.scaled(num_cores=CORES)


def orderings_for(graph):
    return [
        make_ordering(name, graph, num_parts=CORES) for name in ORDERING_NAMES
    ]


class TestPermutationProperties:
    def test_every_ordering_is_a_bijection(self, graph):
        n = graph.num_vertices
        for ordering in orderings_for(graph):
            assert ordering.perm.shape == (n,)
            assert np.array_equal(np.sort(ordering.perm), np.arange(n))
            assert np.array_equal(np.sort(ordering.inv), np.arange(n))

    def test_inverse_round_trips(self, graph):
        n = graph.num_vertices
        ids = np.arange(n)
        for ordering in orderings_for(graph):
            assert np.array_equal(ordering.perm[ordering.inv], ids)
            assert np.array_equal(ordering.inv[ordering.perm], ids)

    def test_array_round_trips(self, graph):
        rng = np.random.default_rng(7)
        values = rng.normal(size=graph.num_vertices)
        for ordering in orderings_for(graph):
            assert np.array_equal(
                ordering.to_original(ordering.to_permuted(values)), values
            )
            assert np.array_equal(
                ordering.to_permuted(ordering.to_original(values)), values
            )

    def test_id_round_trips(self, graph):
        rng = np.random.default_rng(11)
        ids = rng.integers(0, graph.num_vertices, size=64)
        for ordering in orderings_for(graph):
            assert np.array_equal(
                ordering.ids_to_original(ordering.ids_to_permuted(ids)), ids
            )

    def test_rejects_non_bijections(self):
        with pytest.raises(ValueError, match="bijection"):
            VertexOrdering("bad", np.array([0, 0, 2]))
        with pytest.raises(ValueError, match="outside"):
            VertexOrdering("bad", np.array([0, 1, 3]))

    def test_identity_detection(self, graph):
        identity = make_ordering("identity", graph)
        assert identity.is_identity
        assert identity.moved_vertices == 0
        degree = make_ordering("degree", graph)
        assert not degree.is_identity
        assert degree.moved_vertices > 0

    def test_permuted_graph_preserves_edges(self, graph):
        ordering = make_ordering("degree", graph)
        permuted = ordering.apply_to_graph(graph)
        assert permuted.num_vertices == graph.num_vertices
        assert permuted.num_edges == graph.num_edges

        def edge_multiset(g, relabel=None):
            src = np.repeat(
                np.arange(g.num_vertices, dtype=np.int64), g.out_degrees()
            )
            dst = np.asarray(g.targets, dtype=np.int64)
            if relabel is not None:
                src, dst = relabel[src], relabel[dst]
            triples = np.stack(
                [src, dst, np.asarray(g.weights, dtype=np.float64)]
            )
            return triples[:, np.lexsort(triples)]

        assert np.array_equal(
            edge_multiset(graph), edge_multiset(permuted, relabel=ordering.inv)
        )

    def test_unknown_ordering_name(self, graph):
        with pytest.raises(KeyError, match="unknown ordering"):
            make_ordering("sorted", graph)


class TestOrderingShapes:
    def test_degree_sorts_hot_first(self, graph):
        ordering = make_ordering("degree", graph)
        out_deg = graph.out_degrees()
        in_deg = np.zeros(graph.num_vertices, dtype=np.int64)
        np.add.at(in_deg, graph.targets, 1)
        total = out_deg + in_deg
        by_new_id = total[ordering.inv]
        assert np.all(np.diff(by_new_id) <= 0)

    def test_hub_cluster_is_top_degree_prefix(self, graph):
        ordering = hub_order(graph)
        num_hubs = max(
            1, int(round(DEFAULT_HUB_FRACTION * graph.num_vertices))
        )
        out_deg = graph.out_degrees()
        in_deg = np.zeros(graph.num_vertices, dtype=np.int64)
        np.add.at(in_deg, graph.targets, 1)
        total = out_deg + in_deg
        cluster = ordering.inv[:num_hubs]
        threshold = np.sort(total)[::-1][num_hubs - 1]
        assert np.all(total[cluster] >= threshold)

    def test_partition_order_keeps_blocks(self, graph):
        ordering = partition_order(graph, CORES)
        total_in = np.zeros(graph.num_vertices, dtype=np.int64)
        np.add.at(total_in, graph.targets, 1)
        total = graph.out_degrees() + total_in
        for part in by_edge_count(graph, CORES):
            block = np.arange(part.begin, part.end)
            new_ids = ordering.perm[block]
            # the block's vertices keep occupying the same id range...
            assert new_ids.min() == part.begin
            assert new_ids.max() == part.end - 1
            # ...and are hot-first within it
            by_new = total[ordering.inv[part.begin : part.end]]
            assert np.all(np.diff(by_new) <= 0)


class TestReorderedRunsReproduceStates:
    @pytest.mark.parametrize("system", ["ligra-o", "depgraph-h"])
    @pytest.mark.parametrize("ordering", ["degree", "hub", "partition"])
    def test_sssp_states_bit_identical(
        self, graph, hardware, system, ordering
    ):
        identity = runtime.run(
            system, graph, algorithms.make("sssp"), hardware
        )
        reordered = runtime.run(
            system, graph, algorithms.make("sssp"), hardware, reorder=ordering
        )
        assert np.array_equal(identity.states, reordered.states)

    def test_wcc_states_bit_identical_under_symmetrization(
        self, graph, hardware
    ):
        # wcc sets needs_symmetric: the wrapper must hand the inner
        # algorithm the symmetrized *original* graph
        identity = runtime.run(
            "ligra-o", graph, algorithms.make("wcc"), hardware
        )
        reordered = runtime.run(
            "ligra-o", graph, algorithms.make("wcc"), hardware, reorder="degree"
        )
        assert np.array_equal(identity.states, reordered.states)

    def test_pagerank_states_within_tolerance(self, graph, hardware):
        identity = runtime.run(
            "ligra-o", graph, algorithms.make("pagerank"), hardware
        )
        reordered = runtime.run(
            "ligra-o",
            graph,
            algorithms.make("pagerank"),
            hardware,
            reorder="degree",
        )
        assert np.max(
            np.abs(np.asarray(identity.states) - np.asarray(reordered.states))
        ) < SUM_TOLERANCE

    def test_prebuilt_ordering_accepted(self, graph, hardware):
        ordering = make_ordering("degree", graph)
        identity = runtime.run(
            "ligra-o", graph, algorithms.make("sssp"), hardware
        )
        reordered = runtime.run(
            "ligra-o", graph, algorithms.make("sssp"), hardware, reorder=ordering
        )
        assert np.array_equal(identity.states, reordered.states)


class TestOriginalIdReporting:
    def test_reorder_counters_and_label(self, graph, hardware):
        result = runtime.run(
            "ligra-o", graph, algorithms.make("sssp"), hardware, reorder="degree"
        )
        assert result.ordering == "degree"
        assert result.extra["obs.reorder.applied"] == 1.0
        assert result.extra["obs.reorder.moved_vertices"] > 0

    def test_identity_run_reports_zero_counters(self, graph, hardware):
        result = runtime.run(
            "ligra-o", graph, algorithms.make("sssp"), hardware
        )
        assert result.ordering == "identity"
        assert result.extra["obs.reorder.applied"] == 0.0
        assert result.extra["obs.reorder.moved_vertices"] == 0.0

    def test_partition_map_in_original_ids(self, graph, hardware):
        result = runtime.run(
            "ligra-o", graph, algorithms.make("sssp"), hardware, reorder="degree"
        )
        assert result.partition_map is not None
        assert result.partition_map.shape == (graph.num_vertices,)
        assert result.partition_map.min() >= 0
        assert result.partition_map.max() < CORES
        # reconstruct: the run partitioned the *permuted* graph; mapping
        # its owner array back through the ordering must reproduce what
        # the result reports
        ordering = make_ordering("degree", graph)
        owners = by_edge_count(
            ordering.apply_to_graph(graph), CORES
        ).owner_map()
        assert np.array_equal(
            result.partition_map, ordering.to_original(owners)
        )

    def test_hub_ids_in_original_ids(self, graph, hardware):
        identity = runtime.run(
            "depgraph-h", graph, algorithms.make("sssp"), hardware
        )
        reordered = runtime.run(
            "depgraph-h",
            graph,
            algorithms.make("sssp"),
            hardware,
            reorder="degree",
        )
        assert identity.hub_vertex_ids is not None
        assert reordered.hub_vertex_ids is not None
        # hub selection keys on degrees, which relabeling preserves, so
        # the hub *set* must come back identical in original ids
        assert np.array_equal(
            identity.hub_vertex_ids, reordered.hub_vertex_ids
        )


class TestServeUnderReordering:
    def test_warm_start_verifies_under_degree_ordering(self):
        config = BenchConfig(
            dataset="AZ",
            scale=0.1,
            slots=8,
            cores=4,
            seed=0,
            reorder="degree",
        )
        table, service, verification = run_bench(config)
        assert verification.warm_runs > 0
        assert verification.states_match
        assert service.engine.reorder == "degree"
        # orderings are resolved once per snapshot version and reused
        assert len(service.engine._orderings) <= (
            service.store.latest_version + 1
        )
