"""Smoke tests for the experiment harness at a tiny quick configuration.

The full-scale runs live under benchmarks/; these just prove every module
produces a well-formed table with the expected columns.
"""

import pytest

from repro.experiments import (
    fig04_motivation,
    fig09_breakdown,
    fig10_updates,
    fig11_speedup,
    fig12_utilization,
    fig13_scalability,
    fig14_energy,
    fig15_stack_depth,
    fig16_cache,
    fig18_lambda_beta,
    fig19_skew,
    preprocessing,
    table03_datasets,
    table04_area,
)
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentTable,
    WorkloadCache,
    geometric_mean,
)

TINY = ExperimentConfig(
    scale=0.1,
    cores=4,
    dataset_names=("AZ",),
    algorithm_names=("sssp",),
)


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(TINY)


def check(table):
    assert isinstance(table, ExperimentTable)
    assert table.rows, f"{table.experiment_id} produced no rows"
    for row in table.rows:
        assert len(row) == len(table.headers)
    assert table.render()
    return table


class TestHarnessModules:
    def test_fig4a(self, cache):
        check(fig04_motivation.run_utilization(TINY, cache))

    def test_fig4b(self, cache):
        table = check(fig04_motivation.run_thread_scaling(TINY, cache))
        assert table.column("cores")[0] == 1

    def test_fig4c(self, cache):
        check(fig04_motivation.run_round_activity(TINY, cache, dataset="AZ"))

    def test_fig4d(self, cache):
        table = check(fig04_motivation.run_top_k_paths(TINY, cache))
        for row in table.rows:
            assert all(0.0 <= r <= 1.0 for r in row[1:])

    def test_fig9(self, cache):
        table = check(fig09_breakdown.run(TINY, cache))
        assert set(table.column("system")) == {
            "ligra-o",
            "depgraph-s",
            "depgraph-h",
        }

    def test_fig10(self, cache):
        table = check(fig10_updates.run(TINY, cache))
        # normalization anchor: ligra-o column is exactly 1
        assert all(row[2] == 1.0 for row in table.rows)

    def test_fig11(self, cache):
        table = check(fig11_speedup.run(TINY, cache))
        assert table.rows[-1][0] == "geomean"
        contribution = fig11_speedup.hub_contribution(table)
        assert -1.0 <= contribution <= 1.0

    def test_fig12(self, cache):
        check(fig12_utilization.run(TINY, cache, algorithm="sssp"))

    def test_fig13(self, cache):
        table = check(
            fig13_scalability.run(TINY, cache, dataset="AZ", algorithm="sssp")
        )
        assert table.column("cores") == [4]

    def test_fig14(self, cache):
        table = check(fig14_energy.run(TINY, cache, dataset="AZ", algorithm="sssp"))
        totals = dict(zip(table.column("system"), table.column("total_norm")))
        assert totals["hats"] == pytest.approx(1.0)

    def test_fig15(self, cache):
        table = check(fig15_stack_depth.run(TINY, cache, dataset="AZ"))
        assert table.column("stack_depth") == [2, 5, 10, 20, 40]

    def test_fig16a(self, cache):
        check(fig16_cache.run_llc_size(TINY, cache, dataset="AZ", algorithm="sssp"))

    def test_fig16b(self, cache):
        table = check(
            fig16_cache.run_llc_policy(TINY, cache, dataset="AZ", algorithm="sssp")
        )
        assert set(table.column("policy")) == {"lru", "drrip", "grasp"}

    def test_fig17(self, cache):
        check(fig16_cache.run_l2_size(TINY, cache, dataset="AZ", algorithm="sssp"))

    def test_fig18(self, cache):
        check(fig18_lambda_beta.run(TINY, cache, dataset="AZ"))

    def test_fig19(self):
        table = check(fig19_skew.run(TINY, algorithm="sssp"))
        assert table.column("alpha") == [1.8, 1.9, 2.0, 2.1, 2.2]

    def test_table3(self, cache):
        check(table03_datasets.run(TINY, cache))

    def test_table4(self):
        table = check(table04_area.run())
        assert len(table.rows) == 4

    def test_preprocessing(self, cache):
        check(preprocessing.run(TINY, cache))


class TestCommonHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)

    def test_cache_memoizes(self, cache):
        a = cache.result("ligra-o", "AZ", "sssp")
        b = cache.result("ligra-o", "AZ", "sssp")
        assert a is b

    def test_cache_distinguishes_options(self, cache):
        a = cache.result("depgraph-h", "AZ", "sssp", stack_depth=5)
        b = cache.result("depgraph-h", "AZ", "sssp", stack_depth=10)
        assert a is not b

    def test_quick_config(self):
        q = ExperimentConfig().quick()
        assert q.scale <= 0.2
        assert len(q.dataset_names) == 2

    def test_table_column(self):
        t = ExperimentTable("x", "t", ["a", "b"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column("b") == [2, 4]
        with pytest.raises(ValueError):
            t.column("missing")
