"""Cross-validation of the reference solvers against networkx.

The reference module is the ground truth for every runtime test, so it is
itself validated against an independent implementation.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import reference
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    g = generators.power_law(150, 900, alpha=2.0, seed=13, weighted=True)
    return generators.ensure_reachable(g, root=0, seed=13)


@pytest.fixture(scope="module")
def nx_graph(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for s, t, w in graph.edges():
        g.add_edge(s, t, weight=w)
    return g


class TestAgainstNetworkx:
    def test_sssp_matches_networkx_dijkstra(self, graph, nx_graph):
        ours = reference.sssp(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(nx_graph, 0)
        for v in range(graph.num_vertices):
            if v in theirs:
                assert ours[v] == pytest.approx(theirs[v], abs=1e-9)
            else:
                assert math.isinf(ours[v])

    def test_bfs_matches_networkx(self, graph, nx_graph):
        ours = reference.bfs(graph, 0)
        theirs = nx.single_source_shortest_path_length(nx_graph, 0)
        for v in range(graph.num_vertices):
            if v in theirs:
                assert ours[v] == theirs[v]
            else:
                assert math.isinf(ours[v])

    def test_wcc_matches_networkx(self, graph, nx_graph):
        ours = reference.wcc(graph)
        components = list(nx.weakly_connected_components(nx_graph))
        for comp in components:
            labels = {ours[v] for v in comp}
            assert len(labels) == 1
            assert labels.pop() == max(comp)

    def test_pagerank_proportional_to_networkx(self, graph, nx_graph):
        """Our unnormalised fixpoint is networkx's pagerank up to scale
        (networkx normalises to sum 1 and splits dangling mass; compare
        rank ORDER of the top vertices, which is what the algorithm is
        for)."""
        ours = reference.pagerank(graph, damping=0.85)
        theirs = nx.pagerank(nx_graph, alpha=0.85, max_iter=200, tol=1e-10)
        ours_top = list(np.argsort(ours)[::-1][:10])
        theirs_top = sorted(theirs, key=theirs.get, reverse=True)[:10]
        # the same vertices dominate both rankings
        assert len(set(ours_top) & set(theirs_top)) >= 7

    def test_kcore_matches_networkx(self, graph):
        k = 4
        ours = reference.kcore(graph, k)
        sym = reference.symmetrize(graph)
        g = nx.Graph()
        g.add_nodes_from(range(sym.num_vertices))
        for s, t, _ in sym.edges():
            g.add_edge(s, t)
        g.remove_edges_from(nx.selfloop_edges(g))
        core = nx.k_core(g, k)
        expected = np.zeros(graph.num_vertices, dtype=bool)
        expected[list(core.nodes)] = True
        assert (ours == expected).all()

    def test_katz_matches_networkx_ordering(self, graph, nx_graph):
        attenuation = 0.005
        ours = reference.katz(graph, attenuation=attenuation)
        theirs = nx.katz_centrality(
            # networkx sums over in-edges, matching our out-edge scatter
            nx_graph,
            alpha=attenuation,
            beta=1.0,
            max_iter=5000,
            tol=1e-12,
            normalized=False,
        )
        theirs_arr = np.asarray([theirs[v] for v in range(graph.num_vertices)])
        assert np.allclose(ours, theirs_arr, rtol=1e-4, atol=1e-6)
