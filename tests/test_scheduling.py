"""Unit tests for the shared scheduling layer (repro.runtime.scheduling).

Covers the degree-weighted cost estimator, mesh-proximity victim ranking
(near cores must outrank far ones), the cost-sized chunked-steal split,
the rebalance skew threshold, and the policy/option plumbing.
"""

import pytest

from repro.hardware.noc import MeshNoC
from repro.runtime.scheduling import (
    EDGE_UNIT_COST,
    PARTITION_POLICY,
    RANDOM_POLICY,
    STEAL_POLICIES,
    VERTEX_BASE_COST,
    CostEstimator,
    SchedulingPolicy,
    VictimRanker,
    chunk_split,
    make_policy,
    pop_scheduling_options,
    rebalance_ownership,
)


class TestSchedulingPolicy:
    def test_default_is_seed_behaviour(self):
        assert RANDOM_POLICY.steal_policy == "random"
        assert not RANDOM_POLICY.partition_aware

    def test_partition_policy_flag(self):
        assert PARTITION_POLICY.partition_aware

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="steal_policy"):
            SchedulingPolicy(steal_policy="round-robin")

    def test_policies_tuple(self):
        assert STEAL_POLICIES == ("random", "partition", "auto")

    def test_make_policy_knobs(self):
        policy = make_policy("partition", rebalance_skew=2.0, hop_penalty_cycles=0)
        assert policy.partition_aware
        assert policy.rebalance_skew == 2.0
        assert policy.hop_penalty_cycles == 0

    def test_pop_scheduling_options_strips_only_sched_keys(self):
        options = {"steal_policy": "partition", "rebalance_skew": 3.0, "lam": 0.01}
        policy = pop_scheduling_options(options)
        assert policy.partition_aware
        assert policy.rebalance_skew == 3.0
        # runtime-specific options survive for DepGraphOptions
        assert options == {"lam": 0.01}

    def test_pop_scheduling_options_defaults(self):
        assert pop_scheduling_options({}) == RANDOM_POLICY


class TestCostEstimator:
    def test_vertex_cost_is_base_plus_degree(self):
        est = CostEstimator([0, 3, 10])
        assert est.vertex_cost(0) == VERTEX_BASE_COST
        assert est.vertex_cost(1) == VERTEX_BASE_COST + 3 * EDGE_UNIT_COST
        assert est.vertex_cost(2) == VERTEX_BASE_COST + 10 * EDGE_UNIT_COST

    def test_queue_cost_sums_slice(self):
        est = CostEstimator([1, 2, 3, 4])
        queue = [0, 1, 2, 3]
        assert est.queue_cost(queue) == sum(est.vertex_cost(v) for v in queue)
        assert est.queue_cost(queue, start=2) == est.vertex_cost(2) + est.vertex_cost(3)
        assert est.queue_cost(queue, start=4) == 0

    def test_hub_outweighs_tail_queue(self):
        """One 50-edge hub must price above five 1-edge tail vertices —
        the whole point of degree weighting."""
        est = CostEstimator([50, 1, 1, 1, 1, 1])
        assert est.vertex_cost(0) > est.queue_cost([1, 2, 3, 4, 5])


class TestChunkSplit:
    def test_uniform_degrees_take_half(self):
        est = CostEstimator([1] * 10)
        assert chunk_split(list(range(10)), 0, est) == 5

    def test_respects_consumed_prefix(self):
        est = CostEstimator([1] * 10)
        # 6 remaining -> take 3
        assert chunk_split(list(range(10)), 4, est) == 3

    def test_zero_when_fewer_than_two_remaining(self):
        est = CostEstimator([1] * 4)
        assert chunk_split([0, 1, 2, 3], 3, est) == 0
        assert chunk_split([0, 1, 2, 3], 4, est) == 0
        assert chunk_split([0], 0, est) == 0

    def test_always_leaves_victim_one_item(self):
        est = CostEstimator([1, 1000])
        # back item is nearly all the cost, but the victim keeps the front
        assert chunk_split([0, 1], 0, est) == 1

    def test_hub_at_back_satisfies_split_alone(self):
        """A single hub at the back carries half the cost by itself, so a
        count-half split (2 of 5) would over-steal."""
        est = CostEstimator([1, 1, 1, 1, 100])
        take = chunk_split([0, 1, 2, 3, 4], 0, est)
        assert take == 1

    def test_tail_heavy_queue_takes_more_than_half_count(self):
        """When the cheap items sit at the back, cost-half needs more than
        count-half of them."""
        degrees = [100, 100, 0, 0, 0, 0, 0, 0]
        est = CostEstimator(degrees)
        take = chunk_split(list(range(8)), 0, est)
        assert take > 3  # count-half would be 4 items but cost says take 6
        taken = list(range(8))[-take:]
        assert est.queue_cost(taken) * 2 >= est.queue_cost(list(range(8))) - \
            est.vertex_cost(taken[0])


class TestVictimRanker:
    def test_near_before_far(self):
        """On the default 8x8 mesh, core 1 (1 hop from core 0) must rank
        before core 63 (14 hops)."""
        ranker = VictimRanker(64, MeshNoC())
        assert ranker.rank(0, [63, 8, 1]) == [1, 8, 63]
        assert ranker.hops(0, 1) == 1
        assert ranker.hops(0, 8) == 1
        assert ranker.hops(0, 63) == 14
        assert ranker.hops(5, 5) == 0

    def test_rank_ties_break_by_core_id(self):
        ranker = VictimRanker(64, MeshNoC())
        # cores 1 and 8 are both 1 hop from core 0
        assert ranker.rank(0, [8, 1]) == [1, 8]

    def test_choose_prefers_near_core_over_heaviest(self):
        """A near core above the load floor wins even when a far core has
        strictly more work."""
        ranker = VictimRanker(64, MeshNoC())
        loads = [0.0] * 64
        loads[1] = 60.0   # 1 hop, above half of max
        loads[63] = 100.0  # 14 hops, heaviest
        assert ranker.choose(0, loads) == 1

    def test_choose_skips_peanuts_next_door(self):
        """A near core *below* half the max load is not worth the trip."""
        ranker = VictimRanker(64, MeshNoC())
        loads = [0.0] * 64
        loads[1] = 10.0
        loads[63] = 100.0
        assert ranker.choose(0, loads) == 63

    def test_choose_honours_min_load(self):
        ranker = VictimRanker(4, MeshNoC())
        assert ranker.choose(0, [0.0, 1.0, 0.0, 0.0], min_load=2.0) is None
        assert ranker.choose(0, [0.0, 2.0, 0.0, 0.0], min_load=2.0) == 1

    def test_choose_never_picks_thief_or_empty(self):
        ranker = VictimRanker(4, MeshNoC())
        assert ranker.choose(0, [100.0, 0.0, 0.0, 0.0]) is None


class TestRebalance:
    def test_balanced_map_untouched(self):
        # 4 partitions, 2 cores, equal work: below any sane threshold
        assert (
            rebalance_ownership([10.0, 10.0, 10.0, 10.0], [0, 0, 1, 1], 2)
            is None
        )

    def test_threshold_gates_rebalance(self):
        """Skew just below the threshold is tolerated; above it triggers."""
        costs = [30.0, 0.0, 10.0, 0.0]  # core0=30, core1=10, mean=20
        owners = [0, 0, 1, 1]
        # max/mean = 1.5 exactly -> not strictly above the default threshold
        assert rebalance_ownership(costs, owners, 2, skew_threshold=1.5) is None
        new = rebalance_ownership(costs, owners, 2, skew_threshold=1.4)
        assert new is not None

    def test_lpt_assignment_balances_totals(self):
        costs = [40.0, 30.0, 20.0, 10.0]
        owners = [0, 0, 0, 0]  # everything on core 0: skew = 2.0
        new = rebalance_ownership(costs, owners, 2, skew_threshold=1.5)
        assert new is not None
        totals = [0.0, 0.0]
        for part, core in enumerate(new):
            totals[core] += costs[part]
        # LPT on these costs gives a perfect 50/50 split
        assert totals == [50.0, 50.0]

    def test_zero_work_returns_none(self):
        assert rebalance_ownership([0.0, 0.0], [0, 1], 2) is None

    def test_ties_keep_home_core(self):
        """With uniform costs and equal core loads the LPT pass must
        re-produce the current map (home-core preference), so the function
        reports 'no change'."""
        costs = [10.0, 10.0, 10.0, 10.0]
        owners = [0, 1, 0, 1]
        assert rebalance_ownership(costs, owners, 2, skew_threshold=0.99) is None

    def test_deterministic(self):
        costs = [37.0, 11.0, 29.0, 5.0, 23.0, 2.0]
        owners = [0, 0, 0, 1, 1, 2]
        ranker = VictimRanker(4, MeshNoC())
        first = rebalance_ownership(costs, owners, 4, ranker, 1.2)
        second = rebalance_ownership(costs, owners, 4, ranker, 1.2)
        assert first == second
