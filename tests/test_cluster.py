"""Tests for the multi-worker serving cluster (repro.serve.cluster).

Covers rendezvous routing (determinism, minimal disruption, restart
stability), the dispatcher's discrete-event clocks and deterministic
``obs.cluster.*`` counters (same seed -> bit-identical), worker-death
fault handling (restart + requeue, no silent drops, warm inheritance
through the shared baseline spool), inline/process transport
equivalence, the HTTP/JSON front door, cross-engine baseline
inheritance, version-chain compaction, and the shared serve-config
builder.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.hardware import HardwareConfig
from repro.serve import (
    GraphDelta,
    GraphStore,
    QueryEngine,
    ServeConfig,
    build_serve_config,
)
from repro.serve.cluster import (
    CLUSTER_COUNTER_FAMILY,
    ClusterHTTPServer,
    ClusterService,
    RoutingTable,
)
from repro.serve.cluster.routing import score
from repro.serve.traffic import TrafficConfig
from repro.serve.warmstart import FALLBACK_COMPACTED


def small_graph():
    edges = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 1)]
    return CSRGraph.from_edges(4, edges, weights=[1.0] * len(edges))


def make_cluster(tmp_path, workers=2, transport="inline", **config_kw):
    config_kw.setdefault("cores", 4)
    return ClusterService(
        small_graph(),
        ServeConfig(**config_kw),
        workers=workers,
        transport=transport,
        spool_dir=str(tmp_path / "spool"),
    )


WORKLOAD = (
    ("sssp", {"source": 0}),
    ("wcc", {}),
    ("sssp", {"source": 0}),  # coalesces/caches with the first
    ("pagerank", {"damping": 0.85}),
    ("bfs", {"source": 1}),
)


def run_workload(service, mutate=True):
    """Submit the canned workload, mutate mid-stream, drain everything."""
    for algorithm, params in WORKLOAD[:3]:
        service.submit(algorithm, params)
    service.drain()
    if mutate:
        service.apply_update(GraphDelta(add_edges=[(3, 0)]))
    for algorithm, params in WORKLOAD:
        service.submit(algorithm, params)
    service.drain()
    return service.metrics_snapshot()


class TestRouting:
    def test_deterministic_and_total(self):
        table = RoutingTable(["w0", "w1", "w2"])
        keys = [f"lineage-{i}" for i in range(40)]
        first = [table.route(k) for k in keys]
        assert first == [table.route(k) for k in keys]
        assert set(first) <= {"w0", "w1", "w2"}
        # rendezvous hashing spreads 40 keys over 3 workers; none empty
        assert len(set(first)) == 3

    def test_minimal_disruption_on_add(self):
        table = RoutingTable(["w0", "w1", "w2"])
        keys = [f"lineage-{i}" for i in range(60)]
        before = {k: table.route(k) for k in keys}
        table.add_worker("w3")
        moved = [k for k in keys if table.route(k) != before[k]]
        # only keys whose top scorer is the new worker may move
        assert all(table.route(k) == "w3" for k in moved)
        assert 0 < len(moved) < len(keys) / 2

    def test_remove_reassigns_only_the_lost_worker(self):
        table = RoutingTable(["w0", "w1", "w2"])
        keys = [f"lineage-{i}" for i in range(60)]
        before = {k: table.route(k) for k in keys}
        table.remove_worker("w1")
        for key in keys:
            if before[key] != "w1":
                assert table.route(key) == before[key]
            else:
                assert table.route(key) in ("w0", "w2")

    def test_restart_under_same_name_is_stable(self):
        # a restarted slot keeps its name, so its assignments are stable
        table = RoutingTable(["w0", "w1"])
        assignment = {f"k{i}": table.route(f"k{i}") for i in range(20)}
        rebuilt = RoutingTable(["w1", "w0"])  # order must not matter
        assert assignment == {k: rebuilt.route(k) for k in assignment}

    def test_last_worker_cannot_be_removed(self):
        table = RoutingTable(["w0"])
        with pytest.raises(ValueError):
            table.remove_worker("w0")

    def test_score_is_pure(self):
        assert score("w0", "k") == score("w0", "k")
        assert score("w0", "k") != score("w1", "k")


class TestClusterDeterminism:
    def test_same_seed_replay_bit_identical(self, tmp_path):
        with make_cluster(tmp_path / "a") as a, make_cluster(tmp_path / "b") as b:
            first = run_workload(a)
            second = run_workload(b)
        keys = [
            k
            for k in first
            if k.startswith("obs.cluster.") or k.startswith("obs.serve.")
        ]
        assert keys
        for key in keys:
            assert first[key] == second[key], key

    def test_zero_seeded_counter_family(self, tmp_path):
        with make_cluster(tmp_path) as service:
            snapshot = service.metrics_snapshot()
        for name in CLUSTER_COUNTER_FAMILY:
            assert f"obs.{name}" in snapshot, name
            assert snapshot[f"obs.{name}"] == 0.0

    def test_process_transport_matches_inline(self, tmp_path):
        inline = run_workload(make_cluster(tmp_path / "i", transport="inline"))
        with make_cluster(tmp_path / "p", transport="process") as cluster:
            process = run_workload(cluster)
        for key, value in inline.items():
            if key.startswith("obs.cluster.") or key.startswith("obs.serve."):
                assert process[key] == value, key

    def test_multi_worker_overlaps_batches(self, tmp_path):
        # needs engine runs that outlast the per-batch dispatch charge,
        # so a backlog actually forms behind a single worker
        graph = datasets.load("AZ", scale=0.05)
        queries = [
            ("sssp", {"source": 0}),
            ("sssp", {"source": 1}),
            ("sssp", {"source": 2}),
            ("wcc", {}),
            ("bfs", {"source": 0}),
            ("pagerank", {"damping": 0.85}),
        ]
        spans = {}
        for workers in (1, 4):
            with ClusterService(
                graph,
                ServeConfig(cores=4),
                workers=workers,
                spool_dir=str(tmp_path / f"w{workers}"),
            ) as service:
                for algorithm, params in queries:
                    service.submit(algorithm, params)
                assert all(r.ok for r in service.drain())
                spans[workers] = service.makespan_cycles
        # the pool overlaps engine runs: strictly shorter makespan
        assert spans[4] < spans[1]


class TestFaultHandling:
    def test_worker_death_restarts_requeues_and_answers(self, tmp_path):
        with make_cluster(tmp_path) as service:
            # warm every lineage once so the spool holds their baselines
            for algorithm, params in WORKLOAD[:2]:
                service.submit(algorithm, params)
            responses = service.drain()
            assert all(r.ok for r in responses)
            victim = responses[0].worker

            service.apply_update(GraphDelta(add_edges=[(3, 0)]))
            service.kill_worker(victim)
            ids = [
                service.submit(algorithm, params)
                for algorithm, params in WORKLOAD[:2]
            ]
            replies = service.drain()
            snapshot = service.metrics_snapshot()
            alive_after = service.workers_alive()[victim]

        # no silent drops: every admitted request reached a terminal reply
        assert sorted(r.request_id for r in replies) == sorted(ids)
        assert all(r.ok for r in replies)
        assert snapshot["obs.cluster.worker_restarts"] == 1.0
        assert snapshot["obs.cluster.requeued"] >= 1.0
        # the replacement answered from the shared spool: warm, inherited
        revived = [r for r in replies if r.worker == victim]
        assert revived
        assert all(r.warm for r in revived)
        assert all(r.inherited for r in revived)
        assert snapshot["obs.serve.baseline_inherited"] >= 1.0
        assert alive_after

    def test_routing_pin_survives_restart(self, tmp_path):
        with make_cluster(tmp_path) as service:
            service.submit("wcc", {})
            (first,) = service.drain()
            service.kill_worker(first.worker)
            service.apply_update(GraphDelta(add_edges=[(3, 0)]))
            service.submit("wcc", {})
            (second,) = service.drain()
            snapshot = service.metrics_snapshot()
        assert second.worker == first.worker
        # the lineage was routed once; the restart did not re-route it
        assert snapshot["obs.cluster.routed"] == 1.0


class TestBaselineInheritance:
    def test_forked_engine_answers_warm_from_spool(self, tmp_path):
        spool = str(tmp_path / "baselines")
        store = GraphStore(small_graph())
        hardware = HardwareConfig.scaled(num_cores=4)
        parent = QueryEngine(store, hardware=hardware, baseline_dir=spool)
        cold = parent.execute("sssp", {"source": 0})
        assert not cold.warm and not cold.inherited

        store.apply(GraphDelta(add_edges=[(3, 0)]))
        fork = QueryEngine(store, hardware=hardware, baseline_dir=spool)
        run = fork.execute("sssp", {"source": 0})
        assert run.warm
        assert run.inherited
        # once the fork converges its own baseline, inheritance clears
        store.apply(GraphDelta(add_edges=[(1, 3)]))
        assert not fork.execute("sssp", {"source": 0}).inherited

    def test_inherit_from_transfers_every_lineage(self):
        store = GraphStore(small_graph())
        hardware = HardwareConfig.scaled(num_cores=4)
        parent = QueryEngine(store, hardware=hardware)
        parent.execute("sssp", {"source": 0})
        parent.execute("wcc", None)
        child = QueryEngine(store, hardware=hardware)
        assert child.inherit_from(parent) == 2
        store.apply(GraphDelta(add_edges=[(3, 0)]))
        assert child.execute("sssp", {"source": 0}).inherited


class TestCompaction:
    def _mutated_store(self, versions=6):
        store = GraphStore(small_graph())
        for i in range(versions):
            store.apply(GraphDelta(reweight=[(0, 1, 2.0 + i)]))
        return store

    def test_retained_versions_resolve_identically(self):
        store = self._mutated_store()
        latest = store.latest_version
        keep = {
            v: store.get(v).graph.num_edges
            for v in range(latest - 2, latest + 1)
        }
        pruned = store.compact(keep_last=2)
        assert pruned > 0
        assert store.first_version == latest - 2
        for version, num_edges in keep.items():
            assert store.get(version).graph.num_edges == num_edges
        with pytest.raises(KeyError):
            store.get(latest - 3)

    def test_compacted_baseline_falls_back_cold(self):
        store = self._mutated_store()
        engine = QueryEngine(store, hardware=HardwareConfig.scaled(num_cores=4))
        engine.execute("sssp", {"source": 0})  # baseline at latest
        store.apply(GraphDelta(reweight=[(0, 1, 9.0)]))
        store.compact(keep_last=0)  # drops the baseline's delta chain
        run = engine.execute("sssp", {"source": 0})
        assert not run.warm
        assert run.fallback_reason == FALLBACK_COMPACTED

    def test_cluster_compact_broadcasts(self, tmp_path):
        with make_cluster(
            tmp_path, transport="process", workers=2
        ) as service:
            for i in range(4):
                service.apply_update(GraphDelta(reweight=[(0, 1, 2.0 + i)]))
            pruned = service.compact(keep_last=1)
            assert pruned > 0
            # replicas answered the broadcast and agree on the chain head
            service.submit("wcc", {})
            assert all(r.ok for r in service.drain())
            snapshot = service.metrics_snapshot()
        assert snapshot["obs.cluster.compactions"] == 1.0


class TestServeConfigBuilder:
    def test_traffic_and_bench_share_the_builder(self):
        config = TrafficConfig(cores=2, queue_limit=7, deadline_cycles=123.0)
        warm = build_serve_config(config, warm=True)
        assert warm.cores == 2
        assert warm.queue_limit == 7
        assert warm.default_deadline_cycles == 123.0
        assert warm.warm

    def test_cold_variant_disables_cache(self):
        cold = build_serve_config(TrafficConfig(), warm=False)
        assert not cold.warm
        assert cold.cache_capacity == 0


class _ServerThread:
    """Run the front door's asyncio loop in a thread for HTTP tests."""

    def __init__(self, service):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.server = None
        self.base = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.server = ClusterHTTPServer(self.service, port=0)
        host, port = self.loop.run_until_complete(self.server.start())
        self.base = f"http://{host}:{port}"
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)
        self.loop.close()

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read().decode())


class TestHTTPFrontDoor:
    @pytest.fixture()
    def served(self, tmp_path):
        with make_cluster(tmp_path) as service:
            with _ServerThread(service) as server:
                yield server

    def test_health_ready_and_metrics(self, served):
        status, health = served.request("GET", "/healthz")
        assert status == 200 and health["workers"] == 2
        status, ready = served.request("GET", "/readyz")
        assert status == 200 and ready["ready"]
        assert set(ready["workers"]) == {"w0", "w1"}
        status, payload = served.request("GET", "/metrics")
        assert status == 200
        assert payload["metrics"]["obs.cluster.dispatched"] == 0.0

    def test_query_update_requery_cycle(self, served):
        status, first = served.request(
            "POST", "/query", {"algorithm": "sssp", "params": {"source": 0}}
        )
        assert status == 200 and first["status"] == "ok"
        assert not first["cache_hit"]

        status, repeat = served.request(
            "POST", "/query", {"algorithm": "sssp", "params": {"source": 0}}
        )
        assert status == 200 and repeat["cache_hit"]

        status, update = served.request(
            "POST", "/update", {"add_edges": [[3, 0]]}
        )
        assert status == 200 and update["version"] == 1

        status, warm = served.request(
            "POST", "/query", {"algorithm": "sssp", "params": {"source": 0}}
        )
        assert status == 200 and warm["warm"] and not warm["cache_hit"]

        status, metrics = served.request("GET", "/metrics")
        assert metrics["metrics"]["obs.serve.cache_hits"] == 1.0
        assert metrics["metrics"]["obs.serve.warm_runs"] == 1.0

    def test_error_paths(self, served):
        status, payload = served.request("POST", "/query", {"params": {}})
        assert status == 400 and "algorithm" in payload["error"]
        status, payload = served.request(
            "POST", "/query", {"algorithm": "nope"}
        )
        assert status == 400
        status, _ = served.request("GET", "/nope")
        assert status == 404

    def test_concurrent_identical_queries_coalesce(self, served):
        results = []

        def fire():
            results.append(
                served.request(
                    "POST", "/query", {"algorithm": "wcc", "params": {}}
                )
            )

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(results) == 4
        assert all(status == 200 and r["status"] == "ok" for status, r in results)
        status, metrics = served.request("GET", "/metrics")
        runs = metrics["metrics"]["obs.serve.engine_runs"]
        hits = metrics["metrics"]["obs.serve.cache_hits"]
        # one engine run; the rest coalesced into the batch or hit cache
        assert runs == 1.0
        assert runs + hits <= 4.0
