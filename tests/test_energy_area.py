"""Tests for the energy (Figure 14) and area/power (Table IV) models."""

import pytest

from repro.hardware.area import (
    CHIP_TDP_W,
    CORE_AREA_MM2,
    PAPER_TABLE_IV,
    area_table,
    depgraph_cost,
)
from repro.hardware.energy import (
    EnergyConstants,
    EnergyReport,
    energy_from_counts,
)


class TestEnergyModel:
    def test_components_scale_with_counts(self):
        small = energy_from_counts(100, 0, 10, 10, 10, 10, 10)
        large = energy_from_counts(200, 0, 20, 20, 20, 20, 20)
        assert large.total == pytest.approx(2 * small.total)

    def test_dram_dominates_per_event(self):
        c = EnergyConstants()
        assert c.dram_access > c.l3_access > c.l2_access > c.l1_access

    def test_breakdown_sums_to_one(self):
        report = energy_from_counts(100, 50, 10, 10, 10, 10, 10, 5)
        assert sum(report.breakdown().values()) == pytest.approx(1.0)

    def test_empty_report(self):
        report = EnergyReport()
        assert report.total == 0.0
        assert report.normalized_to(EnergyReport()) == 0.0

    def test_normalized_to(self):
        a = energy_from_counts(100, 0, 0, 0, 0, 0, 0)
        b = energy_from_counts(200, 0, 0, 0, 0, 0, 0)
        assert b.normalized_to(a) == pytest.approx(2.0)

    def test_idle_cheaper_than_busy(self):
        busy = energy_from_counts(100, 0, 0, 0, 0, 0, 0)
        idle = energy_from_counts(0, 100, 0, 0, 0, 0, 0)
        assert idle.total < busy.total


class TestAreaModel:
    def test_default_matches_paper_area(self):
        cost = depgraph_cost()
        assert cost.area_mm2 == pytest.approx(0.011, abs=0.001)
        assert cost.area_pct_core == pytest.approx(0.61, abs=0.05)

    def test_default_matches_paper_power(self):
        cost = depgraph_cost()
        assert cost.power_mw == pytest.approx(562, rel=0.02)
        assert cost.power_pct_tdp == pytest.approx(0.29, abs=0.02)

    def test_paper_baselines_pct(self):
        """The %TDP column of Table IV back-solves from the published mW."""
        assert PAPER_TABLE_IV["HATS"].power_pct_tdp == pytest.approx(0.22, abs=0.01)
        assert PAPER_TABLE_IV["Minnow"].power_pct_tdp == pytest.approx(0.43, abs=0.01)
        assert PAPER_TABLE_IV["PHI"].power_pct_tdp == pytest.approx(0.25, abs=0.01)

    def test_deeper_stack_costs_more(self):
        shallow = depgraph_cost(stack_depth=5)
        deep = depgraph_cost(stack_depth=40)
        assert deep.area_mm2 > shallow.area_mm2
        assert deep.power_mw > shallow.power_mw

    def test_buffer_bits_match_paper(self):
        """6.1 Kbit stack + 4.8 Kbit FIFO (Section IV-D defaults)."""
        stack_bits = 10 * 610
        fifo_bits = 24 * 200
        assert stack_bits == 6100
        assert fifo_bits == 4800

    def test_area_table_contains_all_accelerators(self):
        table = area_table()
        assert set(table) == {"HATS", "Minnow", "PHI", "DepGraph"}

    def test_invalid_buffers(self):
        with pytest.raises(ValueError):
            depgraph_cost(stack_depth=0)

    def test_constants_sane(self):
        assert 0 < CORE_AREA_MM2 < 20
        assert 50 < CHIP_TDP_W < 500
